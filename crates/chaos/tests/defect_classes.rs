//! Seeded scenarios pinning one recovery path per defect class. Each
//! test arms a quiet fault plan with exactly the class under test, so
//! the run exercises that path and nothing else, and asserts both that
//! the recovery machinery fired (counters) and that it was lossless
//! (bit-identical output).

use std::sync::Arc;

use ompss_chaos::{chaos_run, output_of, run_app};
use ompss_core::Device;
use ompss_mem::cast_slice_mut;
use ompss_runtime::{
    FaultClass, FaultPlan, KernelCost, RunError, Runtime, RuntimeConfig, TaskSpec,
};

#[test]
fn dropped_am_recovered_by_retransmission() {
    let cfg = RuntimeConfig::gpu_cluster(2);
    let reference = output_of(&run_app("stream", cfg.clone())).to_vec();
    let plan = Arc::new(FaultPlan::quiet(11).with_rate(FaultClass::NetDrop, 0.25));
    let run = chaos_run("stream", cfg, plan.clone());
    assert!(plan.stats().count(FaultClass::NetDrop) >= 1, "the plan never dropped a message");
    let rep = run.report.as_ref().expect("report");
    assert!(rep.counters.am_retries >= 1, "a dropped control message must be retransmitted");
    assert_eq!(output_of(&run), reference.as_slice(), "recovery must be lossless");
}

#[test]
fn duplicated_am_deduplicated() {
    let cfg = RuntimeConfig::gpu_cluster(2);
    let reference = run_app("stream", cfg.clone());
    let plan = Arc::new(FaultPlan::quiet(5).with_rate(FaultClass::NetDup, 0.5));
    let run = chaos_run("stream", cfg, plan.clone());
    assert!(plan.stats().count(FaultClass::NetDup) >= 1, "the plan never duplicated a message");
    let rep = run.report.as_ref().expect("report");
    let ref_rep = reference.report.as_ref().expect("report");
    assert_eq!(rep.tasks, ref_rep.tasks, "a duplicated Exec must not run its task twice");
    assert_eq!(output_of(&run), output_of(&reference), "recovery must be lossless");
}

#[test]
fn kernel_failure_reexecuted_once() {
    let cfg = RuntimeConfig::multi_gpu(2);
    let reference = output_of(&run_app("matmul", cfg.clone())).to_vec();
    let plan = Arc::new(FaultPlan::quiet(3).with_forced(FaultClass::KernelFail, 1));
    let run = chaos_run("matmul", cfg, plan);
    let rep = run.report.as_ref().expect("report");
    assert_eq!(rep.counters.tasks_reexecuted, 1, "exactly the forced failure re-executes");
    assert_eq!(output_of(&run), reference.as_slice(), "recovery must be lossless");
}

#[test]
fn device_loss_migrates_queued_work() {
    let cfg = RuntimeConfig::multi_gpu(2);
    let reference = output_of(&run_app("stream", cfg.clone())).to_vec();
    let plan = Arc::new(FaultPlan::quiet(7).with_forced(FaultClass::DeviceLoss, 1));
    let run = chaos_run("stream", cfg, plan);
    let rep = run.report.as_ref().expect("report");
    assert_eq!(rep.counters.devices_lost, 1, "the forced loss takes one device");
    assert_eq!(output_of(&run), reference.as_slice(), "migration must be lossless");
}

#[test]
fn exhausted_budget_yields_run_error_not_panic() {
    // Every kernel launch fails and there is only one GPU, so the task
    // burns its whole retry budget and the run must surface that as a
    // value through `try_run`.
    let plan = Arc::new(FaultPlan::quiet(1).with_forced(FaultClass::KernelFail, u64::MAX));
    let cfg = RuntimeConfig::multi_gpu(1).with_fault_plan(plan);
    let budget = cfg.task_retry_budget;
    let result = Runtime::try_run(cfg, |omp| async move {
        let a = omp.alloc_array::<f32>(256);
        omp.write_array(&a, 0, &vec![1.0f32; 256]);
        omp.submit(
            TaskSpec::new("doomed")
                .device(Device::Cuda)
                .inout(a.full())
                .cost_gpu(KernelCost::memory_bound(1024.0, 0.8))
                .body(|views| {
                    for x in cast_slice_mut::<f32>(views[0]) {
                        *x *= 2.0;
                    }
                }),
        )
        .await;
    });
    match result {
        Err(RunError::Exhausted { attempts, .. }) => {
            assert_eq!(attempts, budget + 1, "budget + 1 attempts before giving up")
        }
        other => panic!("expected RunError::Exhausted, got {other:?}"),
    }
}
