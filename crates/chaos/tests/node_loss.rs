//! Whole-node loss: seeded kills of a slave node mid-run must end in
//! bit-identical output (heartbeat detection, task re-homing, lineage
//! reconstruction) — or, when lineage cannot soundly rebuild, in a
//! fail-closed [`RunError::Exhausted`]. Wrong bytes and panics are
//! never acceptable outcomes.
//!
//! Perlin is the reconstruction-friendly workload: every row block is
//! an independent `inout` writer chain, so any lost version is
//! rebuildable from the master's retained lineage regardless of where
//! the kill lands.

use ompss_chaos::{output_of, run_app};
use ompss_runtime::{RuntimeConfig, SimDuration};
use proptest::prelude::*;

/// Fault-free reference: output bytes and makespan (the kill instants
/// are chosen as fractions of it so they land inside the run).
fn reference(cfg: &RuntimeConfig) -> (Vec<f32>, u64) {
    let run = run_app("perlin", cfg.clone());
    let makespan = run.report.as_ref().expect("report").makespan.as_nanos();
    (output_of(&run).to_vec(), makespan)
}

fn kill_at(makespan: u64, percent: u64) -> SimDuration {
    SimDuration::from_nanos(makespan * percent / 100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn any_planned_node_loss_recovers_bit_identically(percent in 5u64..=85) {
        let cfg = RuntimeConfig::gpu_cluster(2);
        let (expect, makespan) = reference(&cfg);
        let run = run_app("perlin", cfg.with_node_loss(1, kill_at(makespan, percent)));
        let rep = run.report.as_ref().expect("report");
        prop_assert_eq!(rep.counters.nodes_lost, 1, "the kill must be detected");
        prop_assert_eq!(output_of(&run), expect.as_slice(), "recovery must be lossless");
    }
}

#[test]
fn missed_lease_declares_the_node_dead() {
    let cfg = RuntimeConfig::gpu_cluster(2);
    let (expect, makespan) = reference(&cfg);
    let run = run_app("perlin", cfg.with_node_loss(1, kill_at(makespan, 40)));
    let rep = run.report.as_ref().expect("report");
    assert!(
        rep.counters.heartbeats_missed >= 1,
        "a killed slave goes silent: probes must be missed before the lease expires"
    );
    assert_eq!(rep.counters.nodes_lost, 1, "exactly the killed node is declared dead");
    assert!(
        rep.faults.as_ref().expect("armed plan").total() >= 1,
        "the kill is tallied as an injected fault"
    );
    assert_eq!(output_of(&run), expect.as_slice(), "recovery must be lossless");
}

#[test]
fn lineage_reexecution_rebuilds_lost_regions() {
    // Write-back caching on the cluster preset: the dead node holds the
    // *only* copy of every block it computed, so recovery must actually
    // re-run producers, not just re-fetch surviving copies.
    let cfg = RuntimeConfig::gpu_cluster(2);
    let (expect, makespan) = reference(&cfg);
    let run = run_app("perlin", cfg.with_node_loss(1, kill_at(makespan, 55)));
    let rep = run.report.as_ref().expect("report");
    assert_eq!(rep.counters.nodes_lost, 1);
    assert!(
        rep.counters.tasks_relineaged >= 1,
        "dirty blocks on the dead node force producer re-execution"
    );
    assert!(rep.counters.bytes_reconstructed > 0, "reconstructed regions are tallied by size");
    assert_eq!(output_of(&run), expect.as_slice(), "reconstruction must be lossless");
}

#[test]
fn inflight_presend_to_dead_node_is_rerouted() {
    // Matmul's tiles read across both operand matrices, so the master
    // keeps input transfers to the remote node in flight throughout the
    // run; killing the node mid-stream hits transfers on the wire,
    // whose data must be regenerated or rerouted — never half-applied.
    let cfg = RuntimeConfig::gpu_cluster(2).with_presend(4);
    let probe = run_app("matmul", cfg.clone());
    let rep = probe.report.as_ref().expect("report");
    assert!(rep.coherence.presend_bytes > 0, "the scenario must actually exercise presend");
    let expect = output_of(&probe).to_vec();
    let makespan = rep.makespan.as_nanos();
    let run = run_app("matmul", cfg.with_node_loss(1, kill_at(makespan, 50)));
    let rep = run.report.as_ref().expect("report");
    assert_eq!(rep.counters.nodes_lost, 1);
    assert_eq!(output_of(&run), expect.as_slice(), "rerouted presends must be lossless");
}

#[test]
fn kill_after_completion_is_a_no_op() {
    // A kill instant past the makespan never fires: the run must be
    // byte-identical to the reference even with the machinery armed.
    let cfg = RuntimeConfig::gpu_cluster(2);
    let (expect, makespan) = reference(&cfg);
    let run = run_app("perlin", cfg.with_node_loss(1, SimDuration::from_nanos(makespan * 10)));
    let rep = run.report.as_ref().expect("report");
    assert_eq!(rep.counters.nodes_lost, 0, "no kill, no death");
    assert_eq!(output_of(&run), expect.as_slice());
}
