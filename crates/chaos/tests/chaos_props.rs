//! Property: any seeded fault plan with rate below saturation and a
//! sufficient retry budget recovers to the exact fault-free output.

use std::sync::Arc;

use ompss_chaos::{chaos_run, output_of, run_app};
use ompss_runtime::{FaultPlan, RuntimeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn any_seeded_plan_recovers_bit_identically(seed in 0u64..1_000_000, rate_milli in 0u64..=200) {
        let rate = rate_milli as f64 / 1000.0;
        let cfg = RuntimeConfig::gpu_cluster(2);
        let reference = output_of(&run_app("stream", cfg.clone())).to_vec();
        let run = chaos_run("stream", cfg, Arc::new(FaultPlan::new(seed, rate)));
        prop_assert_eq!(output_of(&run), reference.as_slice());
    }
}
