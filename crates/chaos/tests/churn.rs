//! Elastic membership under chaos: planned joins and drains must be
//! invisible in the output bytes, and a crash racing a drain must
//! resolve to crash recovery or a fail-closed abort — never to wrong
//! bytes. These pin one seeded scenario each; the full grid is
//! `chaos --churn`.
//!
//! Perlin is the workload throughout: every row block is an
//! independent `inout` writer chain, so lineage can rebuild whatever a
//! racing kill strands, and any lost or doubled work shows up as a
//! byte diff against the static reference.

use ompss_chaos::{output_of, run_app, try_run_app};
use ompss_runtime::{RunError, RuntimeConfig, SimDuration};

fn sharded3() -> RuntimeConfig {
    RuntimeConfig::gpu_cluster(3).with_sharded_control(3)
}

/// Static reference: output bytes and makespan (churn instants are
/// fractions of it so they land inside the run).
fn reference(cfg: &RuntimeConfig) -> (Vec<f32>, u64) {
    let run = run_app("perlin", cfg.clone());
    let makespan = run.report.as_ref().expect("report").makespan.as_nanos();
    (output_of(&run).to_vec(), makespan)
}

fn at(makespan: u64, percent: u64) -> SimDuration {
    SimDuration::from_nanos(makespan * percent / 100)
}

#[test]
fn planned_drain_is_bit_identical_to_the_static_run() {
    let cfg = sharded3();
    let (expect, makespan) = reference(&cfg);
    let run = run_app("perlin", cfg.with_node_drain(2, at(makespan, 45)));
    let rep = run.report.as_ref().expect("report");
    assert_eq!(rep.counters.nodes_drained, 1, "the drain must actually fire");
    assert_eq!(rep.counters.nodes_lost, 0, "a drain is not a fault");
    assert!(rep.counters.bytes_migrated > 0, "the leaver's data must move home");
    assert_eq!(output_of(&run), expect.as_slice(), "a graceful drain never changes bytes");
}

#[test]
fn planned_join_is_bit_identical_to_the_static_run() {
    let cfg = sharded3();
    let (expect, makespan) = reference(&cfg);
    let run = run_app("perlin", cfg.with_node_join(2, at(makespan, 25)));
    let rep = run.report.as_ref().expect("report");
    assert_eq!(rep.counters.nodes_joined, 1, "the join must actually fire");
    assert_eq!(output_of(&run), expect.as_slice(), "an elastic join never changes bytes");
}

#[test]
fn kill_racing_the_drain_never_serves_wrong_bytes() {
    // The draining node is killed five makespan-percent after its drain
    // starts: whichever step the crash lands in, the run must either
    // finish bit-identically (the drain won the race, or crash recovery
    // rebuilt what the kill stranded) or abort fail-closed with
    // `Exhausted`. Any other error — and any byte diff — is a defect.
    let cfg = sharded3();
    let (expect, makespan) = reference(&cfg);
    let armed = cfg.with_node_drain(2, at(makespan, 40)).with_node_loss(2, at(makespan, 45));
    match try_run_app("perlin", armed) {
        Ok(run) => {
            let rep = run.report.as_ref().expect("report");
            assert!(
                rep.counters.nodes_drained == 1 || rep.counters.nodes_lost == 1,
                "someone must own the node's end: drained={} lost={}",
                rep.counters.nodes_drained,
                rep.counters.nodes_lost
            );
            assert_eq!(output_of(&run), expect.as_slice(), "the race must be lossless");
        }
        Err(RunError::Exhausted { .. }) => {} // fail closed: acceptable
        Err(e) => panic!("drain x kill race must recover or fail closed, got: {e}"),
    }
}
