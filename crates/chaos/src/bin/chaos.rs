//! `chaos` — deterministic fault-injection sweep over the shipped
//! applications.
//!
//! ```text
//! chaos                          # all apps, default rates and seeds
//! chaos --rates 0.05,0.1 --seeds 1,2,3 matmul stream
//! chaos --node-kill              # whole-node kill sweep (cluster only)
//! chaos --node-kill --kill-points 20,45,70 perlin
//! ```
//!
//! For every app × topology, the sweep first runs fault-free for a
//! reference output, then replays the same program under each
//! `(rate, seed)` fault plan and requires the recovered output to be
//! bit-identical. The report is printed as pretty JSON; any divergence,
//! failed run, or missing recovery class makes the exit status 1.
//!
//! `--node-kill` switches to the whole-node loss grid: every app on
//! every cluster topology — including a sharded-control-plane cluster
//! where each slave victim owns a directory shard — killing each slave
//! node at planned fractions of the fault-free makespan. Each case must
//! either recover bit-identically or fail closed with
//! [`RunError::Exhausted`]; wrong bytes or any other crash fails the
//! sweep, as does a grid in which no case actually recovered.
//!
//! `--churn` switches to the elastic-membership grid: each app on a
//! three-node cluster, flat and sharded control plane, under planned
//! joins, drains, a join+drain round trip, and two drain×kill races
//! (the draining node killed mid-drain, and a bystander killed while
//! another node drains). Every cell must finish bit-identically to the
//! static reference or fail closed with [`RunError::Exhausted`] —
//! wrong bytes or any other crash fails the sweep, as does a grid in
//! which no join or no drain actually fired.
//!
//! Every run in the grid — references included — is an independent
//! simulation, so all of them execute on `--jobs N` host threads
//! (default `OMPSS_BENCH_JOBS` / host parallelism); comparisons and the
//! report are assembled serially in grid order, so the output is
//! byte-identical at any job count.

use std::sync::Arc;

use ompss_chaos::{chaos_run, output_of, run_app, topologies, try_run_app, APPS};
use ompss_json::Json;
use ompss_runtime::{FaultClass, FaultPlan, RunError};

fn parse_list(flag: &str, s: &str) -> Vec<f64> {
    s.split(',')
        .map(|p| p.trim().parse().unwrap_or_else(|_| panic!("malformed {flag} entry '{p}'")))
        .collect()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: chaos [--rates r1,r2] [--seeds s1,s2] [--jobs N] [app...]\n       \
             chaos --node-kill [--kill-points p1,p2] [--jobs N] [app...]\n       \
             chaos --churn [--jobs N] [app...]\napps: {}",
            APPS.join(" ")
        );
        return;
    }
    ompss_sweep::parse_jobs_flag(&mut args);
    let mut rates: Vec<f64> = vec![0.05, 0.1];
    let mut seeds: Vec<u64> = vec![1, 2, 3];
    let mut node_kill = false;
    let mut churn = false;
    let mut kill_points: Vec<u64> = vec![20, 45, 70];
    // Resolved against APPS so the sweep closures capture `&'static str`.
    let mut named: Vec<&'static str> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rates" => {
                rates = parse_list("--rates", &it.next().expect("--rates needs a value"));
            }
            "--seeds" => {
                seeds = parse_list("--seeds", &it.next().expect("--seeds needs a value"))
                    .into_iter()
                    .map(|v| v as u64)
                    .collect();
            }
            "--node-kill" => node_kill = true,
            "--churn" => churn = true,
            "--kill-points" => {
                kill_points =
                    parse_list("--kill-points", &it.next().expect("--kill-points needs a value"))
                        .into_iter()
                        .map(|v| v as u64)
                        .collect();
            }
            other => {
                named.push(
                    *APPS.iter().find(|x| **x == other).unwrap_or_else(|| {
                        panic!("unknown app '{other}'; expected one of {APPS:?}")
                    }),
                );
            }
        }
    }
    let apps: Vec<&'static str> = if named.is_empty() { APPS.to_vec() } else { named };

    if node_kill {
        node_kill_sweep(&apps, &kill_points);
        return;
    }
    if churn {
        churn_sweep(&apps);
        return;
    }

    // Queue every simulation in the grid — per (app, topology): the
    // fault-free reference, then one chaos run per (rate, seed). The
    // `FaultPlan` handles stay out here so `plan.stats()` is readable
    // during assembly.
    type RunTask = Box<dyn FnOnce() -> ompss_apps::common::AppRun + Send>;
    let mut tasks: Vec<RunTask> = Vec::new();
    let mut plans: Vec<Arc<FaultPlan>> = Vec::new();
    for &app in &apps {
        for (_topo, cfg) in topologies() {
            let ref_cfg = cfg.clone();
            tasks.push(Box::new(move || run_app(app, ref_cfg)));
            for &rate in &rates {
                for &seed in &seeds {
                    let plan = Arc::new(FaultPlan::new(seed, rate));
                    plans.push(plan.clone());
                    let case_cfg = cfg.clone();
                    tasks.push(Box::new(move || chaos_run(app, case_cfg, plan)));
                }
            }
        }
    }
    let mut results = ompss_sweep::run_jobs(ompss_sweep::jobs(), tasks).into_iter();
    let mut plans = plans.into_iter();

    let mut cases = Json::array();
    let mut divergences = 0usize;
    // Aggregate recovery evidence over the whole sweep: every class the
    // runtime recovers from must fire at least once, or the sweep never
    // exercised it.
    let (mut retries, mut reexec, mut lost, mut dropped) = (0u64, 0u64, 0u64, 0u64);
    for app in &apps {
        for (topo, _cfg) in topologies() {
            let reference = results.next().expect("one result per queued run");
            let ref_out = output_of(&reference).to_vec();
            for &rate in &rates {
                for &seed in &seeds {
                    let plan = plans.next().expect("one plan per queued chaos run");
                    let run = results.next().expect("one result per queued run");
                    let identical = output_of(&run) == ref_out.as_slice();
                    if !identical {
                        divergences += 1;
                    }
                    let rep = run.report.as_ref().expect("ompss app run carries a report");
                    let c = &rep.counters;
                    retries += c.am_retries;
                    reexec += c.tasks_reexecuted;
                    lost += c.devices_lost;
                    dropped += c.msgs_dropped;
                    let stats = plan.stats();
                    cases.push(
                        Json::object()
                            .field("app", *app)
                            .field("topology", topo)
                            .field("rate", rate)
                            .field("seed", seed)
                            .field("identical", identical)
                            .field("injected", stats.total())
                            .field("device_losses", stats.count(FaultClass::DeviceLoss))
                            .field("am_retries", c.am_retries)
                            .field("tasks_reexecuted", c.tasks_reexecuted)
                            .field("devices_lost", c.devices_lost)
                            .field("msgs_dropped", c.msgs_dropped),
                    );
                }
            }
        }
    }

    let mut missing = Vec::new();
    for (name, n) in [
        ("am_retries", retries),
        ("tasks_reexecuted", reexec),
        ("devices_lost", lost),
        ("msgs_dropped", dropped),
    ] {
        if n == 0 {
            missing.push(name);
        }
    }
    let report = Json::object()
        .field("tool", "ompss-chaos")
        .field("divergences", divergences as u64)
        .field(
            "recovery_totals",
            Json::object()
                .field("am_retries", retries)
                .field("tasks_reexecuted", reexec)
                .field("devices_lost", lost)
                .field("msgs_dropped", dropped),
        )
        .field("cases", cases);
    println!("{}", report.to_pretty_string().trim_end());
    if divergences > 0 {
        eprintln!("chaos: {divergences} case(s) diverged from the fault-free output");
        std::process::exit(1);
    }
    if !missing.is_empty() {
        eprintln!("chaos: sweep exercised no recovery of class(es): {}", missing.join(", "));
        std::process::exit(1);
    }
}

/// How one planned node-kill case ended. Recovery and a fail-closed
/// [`RunError::Exhausted`] are the only acceptable outcomes — wrong
/// bytes and any other error fail the sweep.
enum KillOutcome {
    /// The run completed bit-identically; carries its recovery
    /// counters `(nodes_lost, relineaged, reconstructed, missed)`.
    Finished((u64, u64, u64, u64)),
    /// The run aborted with a recovery-budget/lineage exhaustion.
    FailClosed(String),
    /// Any other failure: a real defect.
    Crashed(String),
}

/// The whole-node loss grid: app × cluster size × victim slave × kill
/// instant (a percentage of the fault-free makespan). See the module
/// docs for the pass criteria.
fn node_kill_sweep(apps: &[&'static str], points: &[u64]) {
    use ompss_runtime::{RuntimeConfig, SimDuration};
    type RefTask = Box<dyn FnOnce() -> (Vec<f32>, u64) + Send>;
    // The third cluster runs the sharded control plane, so every slave
    // victim is a shard *owner* homing a slice of the directory: killing
    // it exercises the master's re-homing path, which must either
    // restore the bytes or fail closed.
    let clusters: [(&'static str, u32, bool); 3] =
        [("cluster2", 2, false), ("cluster3", 3, false), ("cluster3_sharded", 3, true)];
    let cluster_cfg = |nodes: u32, sharded: bool| {
        let cfg = RuntimeConfig::gpu_cluster(nodes);
        if sharded {
            cfg.with_sharded_control(nodes)
        } else {
            cfg
        }
    };

    // Phase 1: fault-free references (output bytes + makespan).
    let mut ref_tasks: Vec<RefTask> = Vec::new();
    for &app in apps {
        for &(_, nodes, sharded) in &clusters {
            ref_tasks.push(Box::new(move || {
                let run = run_app(app, cluster_cfg(nodes, sharded));
                let makespan = run.report.as_ref().expect("report").makespan.as_nanos();
                (output_of(&run).to_vec(), makespan)
            }));
        }
    }
    let mut refs = ompss_sweep::run_jobs(ompss_sweep::jobs(), ref_tasks).into_iter();

    // Phase 2: one kill case per (app, cluster, victim, point). Each
    // case classifies itself against its captured reference, so the
    // grid still fans out across `--jobs` threads. Outcomes are sorted
    // by `RunError` variant — `Exhausted` is the fail-closed budget
    // abort, anything else a defect — not by grepping panic strings.
    let mut kill_tasks: Vec<Box<dyn FnOnce() -> KillOutcome + Send>> = Vec::new();
    let mut grid: Vec<(&'static str, &'static str, u32, u64)> = Vec::new();
    for &app in apps {
        for &(topo, nodes, sharded) in &clusters {
            let (expect, makespan) = refs.next().expect("one reference per app x cluster");
            let expect = std::sync::Arc::new(expect);
            for victim in 1..nodes {
                for &pct in points {
                    grid.push((app, topo, victim, pct));
                    let expect = expect.clone();
                    let at = SimDuration::from_nanos(makespan * pct / 100);
                    kill_tasks.push(Box::new(move || {
                        let cfg = cluster_cfg(nodes, sharded).with_node_loss(victim, at);
                        match try_run_app(app, cfg) {
                            Ok(run) => {
                                let c = &run.report.as_ref().expect("report").counters;
                                let counters = (
                                    c.nodes_lost,
                                    c.tasks_relineaged,
                                    c.bytes_reconstructed,
                                    c.heartbeats_missed,
                                );
                                if output_of(&run) == expect.as_slice() {
                                    KillOutcome::Finished(counters)
                                } else {
                                    KillOutcome::Crashed("output diverged".into())
                                }
                            }
                            Err(e @ RunError::Exhausted { .. }) => {
                                KillOutcome::FailClosed(e.to_string())
                            }
                            Err(e) => KillOutcome::Crashed(e.to_string()),
                        }
                    }));
                }
            }
        }
    }
    let results = ompss_sweep::run_jobs(ompss_sweep::jobs(), kill_tasks);

    let mut cases = Json::array();
    let (mut recovered, mut fail_closed, mut failures) = (0u64, 0u64, 0u64);
    let (mut relineaged, mut reconstructed) = (0u64, 0u64);
    for ((app, topo, victim, pct), outcome) in grid.into_iter().zip(results) {
        let mut case = Json::object()
            .field("app", app)
            .field("topology", topo)
            .field("victim", victim as u64)
            .field("kill_percent", pct);
        case = match outcome {
            KillOutcome::Finished((lost, rel, bytes, missed)) => {
                recovered += 1;
                relineaged += rel;
                reconstructed += bytes;
                case.field("outcome", "recovered")
                    .field("nodes_lost", lost)
                    .field("tasks_relineaged", rel)
                    .field("bytes_reconstructed", bytes)
                    .field("heartbeats_missed", missed)
            }
            KillOutcome::FailClosed(msg) => {
                fail_closed += 1;
                case.field("outcome", "fail_closed").field("error", msg)
            }
            KillOutcome::Crashed(msg) => {
                failures += 1;
                case.field("outcome", "FAILURE").field("error", msg)
            }
        };
        cases.push(case);
    }

    let report = Json::object()
        .field("tool", "ompss-chaos")
        .field("mode", "node-kill")
        .field(
            "totals",
            Json::object()
                .field("recovered", recovered)
                .field("fail_closed", fail_closed)
                .field("failures", failures)
                .field("tasks_relineaged", relineaged)
                .field("bytes_reconstructed", reconstructed),
        )
        .field("cases", cases);
    println!("{}", report.to_pretty_string().trim_end());
    if failures > 0 {
        eprintln!("chaos --node-kill: {failures} case(s) crashed or produced wrong bytes");
        std::process::exit(1);
    }
    if recovered == 0 {
        eprintln!("chaos --node-kill: no case actually recovered; the grid proves nothing");
        std::process::exit(1);
    }
}

/// How one churn cell ended. Finishing bit-identically to the static
/// reference and failing closed with [`RunError::Exhausted`] are the
/// only acceptable outcomes — wrong bytes and any other error fail the
/// sweep.
enum ChurnOutcome {
    /// Bit-identical finish; carries `(nodes_joined, nodes_drained,
    /// regions_rebalanced, bytes_migrated, nodes_lost)`.
    Finished((u64, u64, u64, u64, u64)),
    FailClosed(String),
    Crashed(String),
}

/// The elastic-membership grid: app × {flat, sharded} three-node
/// cluster × churn scenario. Node 2 is the elastic member throughout;
/// the two kill scenarios race a crash against its drain (the drainee
/// itself, then bystander node 1). Instants are fractions of the
/// static fault-free makespan so every event lands mid-run.
fn churn_sweep(apps: &[&'static str]) {
    use ompss_runtime::{RuntimeConfig, SimDuration};
    // (name, join %, drain %, (kill victim, kill %)).
    type Scenario = (&'static str, Option<u64>, Option<u64>, Option<(u32, u64)>);
    const SCENARIOS: [Scenario; 5] = [
        ("join", Some(25), None, None),
        ("drain", None, Some(45), None),
        ("join_drain", Some(20), Some(55), None),
        ("drain_then_kill", None, Some(40), Some((2, 45))),
        ("kill_other_during_drain", None, Some(40), Some((1, 45))),
    ];
    let planes: [(&'static str, bool); 2] = [("cluster3", false), ("cluster3_sharded", true)];
    let cluster_cfg = |sharded: bool| {
        let cfg = RuntimeConfig::gpu_cluster(3);
        if sharded {
            cfg.with_sharded_control(3)
        } else {
            cfg
        }
    };

    // Phase 1: static references (output bytes + makespan).
    type RefTask = Box<dyn FnOnce() -> (Vec<f32>, u64) + Send>;
    let mut ref_tasks: Vec<RefTask> = Vec::new();
    for &app in apps {
        for &(_, sharded) in &planes {
            ref_tasks.push(Box::new(move || {
                let run = run_app(app, cluster_cfg(sharded));
                let makespan = run.report.as_ref().expect("report").makespan.as_nanos();
                (output_of(&run).to_vec(), makespan)
            }));
        }
    }
    let mut refs = ompss_sweep::run_jobs(ompss_sweep::jobs(), ref_tasks).into_iter();

    // Phase 2: one run per cell, classified against its reference.
    let mut cell_tasks: Vec<Box<dyn FnOnce() -> ChurnOutcome + Send>> = Vec::new();
    let mut grid: Vec<(&'static str, &'static str, &'static str)> = Vec::new();
    for &app in apps {
        for &(plane, sharded) in &planes {
            let (expect, makespan) = refs.next().expect("one reference per app x plane");
            let expect = std::sync::Arc::new(expect);
            for &(name, join, drain, kill) in &SCENARIOS {
                grid.push((app, plane, name));
                let expect = expect.clone();
                let at = move |pct: u64| SimDuration::from_nanos(makespan * pct / 100);
                cell_tasks.push(Box::new(move || {
                    let mut cfg = cluster_cfg(sharded);
                    if let Some(pct) = join {
                        cfg = cfg.with_node_join(2, at(pct));
                    }
                    if let Some(pct) = drain {
                        cfg = cfg.with_node_drain(2, at(pct));
                    }
                    if let Some((victim, pct)) = kill {
                        cfg = cfg.with_node_loss(victim, at(pct));
                    }
                    match try_run_app(app, cfg) {
                        Ok(run) => {
                            let c = &run.report.as_ref().expect("report").counters;
                            let counters = (
                                c.nodes_joined,
                                c.nodes_drained,
                                c.regions_rebalanced,
                                c.bytes_migrated,
                                c.nodes_lost,
                            );
                            if output_of(&run) == expect.as_slice() {
                                ChurnOutcome::Finished(counters)
                            } else {
                                ChurnOutcome::Crashed("output diverged".into())
                            }
                        }
                        Err(e @ RunError::Exhausted { .. }) => {
                            ChurnOutcome::FailClosed(e.to_string())
                        }
                        Err(e) => ChurnOutcome::Crashed(e.to_string()),
                    }
                }));
            }
        }
    }
    let results = ompss_sweep::run_jobs(ompss_sweep::jobs(), cell_tasks);

    let mut cases = Json::array();
    let (mut identical, mut fail_closed, mut failures) = (0u64, 0u64, 0u64);
    let (mut joined, mut drained, mut rebalanced, mut migrated, mut lost) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for ((app, plane, scenario), outcome) in grid.into_iter().zip(results) {
        let mut case =
            Json::object().field("app", app).field("topology", plane).field("scenario", scenario);
        case = match outcome {
            ChurnOutcome::Finished((j, d, r, b, l)) => {
                identical += 1;
                joined += j;
                drained += d;
                rebalanced += r;
                migrated += b;
                lost += l;
                case.field("outcome", "identical")
                    .field("nodes_joined", j)
                    .field("nodes_drained", d)
                    .field("regions_rebalanced", r)
                    .field("bytes_migrated", b)
                    .field("nodes_lost", l)
            }
            ChurnOutcome::FailClosed(msg) => {
                fail_closed += 1;
                case.field("outcome", "fail_closed").field("error", msg)
            }
            ChurnOutcome::Crashed(msg) => {
                failures += 1;
                case.field("outcome", "FAILURE").field("error", msg)
            }
        };
        cases.push(case);
    }

    let report = Json::object()
        .field("tool", "ompss-chaos")
        .field("mode", "churn")
        .field(
            "totals",
            Json::object()
                .field("identical", identical)
                .field("fail_closed", fail_closed)
                .field("failures", failures)
                .field("nodes_joined", joined)
                .field("nodes_drained", drained)
                .field("regions_rebalanced", rebalanced)
                .field("bytes_migrated", migrated)
                .field("nodes_lost", lost),
        )
        .field("cases", cases);
    println!("{}", report.to_pretty_string().trim_end());
    if failures > 0 {
        eprintln!("chaos --churn: {failures} case(s) crashed or produced wrong bytes");
        std::process::exit(1);
    }
    if joined == 0 || drained == 0 {
        eprintln!(
            "chaos --churn: the grid exercised no {} (joined={joined}, drained={drained})",
            if joined == 0 { "join" } else { "drain" }
        );
        std::process::exit(1);
    }
}
