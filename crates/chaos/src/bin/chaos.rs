//! `chaos` — deterministic fault-injection sweep over the shipped
//! applications.
//!
//! ```text
//! chaos                          # all apps, default rates and seeds
//! chaos --rates 0.05,0.1 --seeds 1,2,3 matmul stream
//! ```
//!
//! For every app × topology, the sweep first runs fault-free for a
//! reference output, then replays the same program under each
//! `(rate, seed)` fault plan and requires the recovered output to be
//! bit-identical. The report is printed as pretty JSON; any divergence,
//! failed run, or missing recovery class makes the exit status 1.
//!
//! Every run in the grid — references included — is an independent
//! simulation, so all of them execute on `--jobs N` host threads
//! (default `OMPSS_BENCH_JOBS` / host parallelism); comparisons and the
//! report are assembled serially in grid order, so the output is
//! byte-identical at any job count.

use std::sync::Arc;

use ompss_chaos::{chaos_run, output_of, run_app, topologies, APPS};
use ompss_json::Json;
use ompss_runtime::{FaultClass, FaultPlan};

fn parse_list(flag: &str, s: &str) -> Vec<f64> {
    s.split(',')
        .map(|p| p.trim().parse().unwrap_or_else(|_| panic!("malformed {flag} entry '{p}'")))
        .collect()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: chaos [--rates r1,r2] [--seeds s1,s2] [--jobs N] [app...]\napps: {}",
            APPS.join(" ")
        );
        return;
    }
    ompss_sweep::parse_jobs_flag(&mut args);
    let mut rates: Vec<f64> = vec![0.05, 0.1];
    let mut seeds: Vec<u64> = vec![1, 2, 3];
    // Resolved against APPS so the sweep closures capture `&'static str`.
    let mut named: Vec<&'static str> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rates" => {
                rates = parse_list("--rates", &it.next().expect("--rates needs a value"));
            }
            "--seeds" => {
                seeds = parse_list("--seeds", &it.next().expect("--seeds needs a value"))
                    .into_iter()
                    .map(|v| v as u64)
                    .collect();
            }
            other => {
                named.push(
                    *APPS.iter().find(|x| **x == other).unwrap_or_else(|| {
                        panic!("unknown app '{other}'; expected one of {APPS:?}")
                    }),
                );
            }
        }
    }
    let apps: Vec<&'static str> = if named.is_empty() { APPS.to_vec() } else { named };

    // Queue every simulation in the grid — per (app, topology): the
    // fault-free reference, then one chaos run per (rate, seed). The
    // `FaultPlan` handles stay out here so `plan.stats()` is readable
    // during assembly.
    type RunTask = Box<dyn FnOnce() -> ompss_apps::common::AppRun + Send>;
    let mut tasks: Vec<RunTask> = Vec::new();
    let mut plans: Vec<Arc<FaultPlan>> = Vec::new();
    for &app in &apps {
        for (_topo, cfg) in topologies() {
            let ref_cfg = cfg.clone();
            tasks.push(Box::new(move || run_app(app, ref_cfg)));
            for &rate in &rates {
                for &seed in &seeds {
                    let plan = Arc::new(FaultPlan::new(seed, rate));
                    plans.push(plan.clone());
                    let case_cfg = cfg.clone();
                    tasks.push(Box::new(move || chaos_run(app, case_cfg, plan)));
                }
            }
        }
    }
    let mut results = ompss_sweep::run_jobs(ompss_sweep::jobs(), tasks).into_iter();
    let mut plans = plans.into_iter();

    let mut cases = Json::array();
    let mut divergences = 0usize;
    // Aggregate recovery evidence over the whole sweep: every class the
    // runtime recovers from must fire at least once, or the sweep never
    // exercised it.
    let (mut retries, mut reexec, mut lost, mut dropped) = (0u64, 0u64, 0u64, 0u64);
    for app in &apps {
        for (topo, _cfg) in topologies() {
            let reference = results.next().expect("one result per queued run");
            let ref_out = output_of(&reference).to_vec();
            for &rate in &rates {
                for &seed in &seeds {
                    let plan = plans.next().expect("one plan per queued chaos run");
                    let run = results.next().expect("one result per queued run");
                    let identical = output_of(&run) == ref_out.as_slice();
                    if !identical {
                        divergences += 1;
                    }
                    let rep = run.report.as_ref().expect("ompss app run carries a report");
                    let c = &rep.counters;
                    retries += c.am_retries;
                    reexec += c.tasks_reexecuted;
                    lost += c.devices_lost;
                    dropped += c.msgs_dropped;
                    let stats = plan.stats();
                    cases.push(
                        Json::object()
                            .field("app", *app)
                            .field("topology", topo)
                            .field("rate", rate)
                            .field("seed", seed)
                            .field("identical", identical)
                            .field("injected", stats.total())
                            .field("device_losses", stats.count(FaultClass::DeviceLoss))
                            .field("am_retries", c.am_retries)
                            .field("tasks_reexecuted", c.tasks_reexecuted)
                            .field("devices_lost", c.devices_lost)
                            .field("msgs_dropped", c.msgs_dropped),
                    );
                }
            }
        }
    }

    let mut missing = Vec::new();
    for (name, n) in [
        ("am_retries", retries),
        ("tasks_reexecuted", reexec),
        ("devices_lost", lost),
        ("msgs_dropped", dropped),
    ] {
        if n == 0 {
            missing.push(name);
        }
    }
    let report = Json::object()
        .field("tool", "ompss-chaos")
        .field("divergences", divergences as u64)
        .field(
            "recovery_totals",
            Json::object()
                .field("am_retries", retries)
                .field("tasks_reexecuted", reexec)
                .field("devices_lost", lost)
                .field("msgs_dropped", dropped),
        )
        .field("cases", cases);
    println!("{}", report.to_pretty_string().trim_end());
    if divergences > 0 {
        eprintln!("chaos: {divergences} case(s) diverged from the fault-free output");
        std::process::exit(1);
    }
    if !missing.is_empty() {
        eprintln!("chaos: sweep exercised no recovery of class(es): {}", missing.join(", "));
        std::process::exit(1);
    }
}
