//! Chaos harness: the shipped applications under seeded deterministic
//! fault injection.
//!
//! A [`FaultPlan`] draws every injection decision from one counter-mode
//! generator, so a `(seed, rate)` pair names an exact fault schedule in
//! virtual time — any failing sweep case replays bit-for-bit. The
//! harness runs each application fault-free for a reference output,
//! re-runs it under the plan, and requires the recovered output to be
//! *bit-identical*: recovery that loses or doubles work shows up as a
//! diff, not a tolerance miss.
//!
//! The `chaos` binary (see `src/bin/chaos.rs`) sweeps apps × topologies
//! × rates × seeds and reports JSON; the crate's tests pin one seeded
//! scenario per defect class the runtime recovers from.

use std::sync::Arc;

use ompss_apps::common::AppRun;
use ompss_apps::matmul::ompss::InitMode;
use ompss_apps::matmul::{self, MatmulParams};
use ompss_apps::nbody::{self, NbodyParams};
use ompss_apps::perlin::{self, PerlinParams};
use ompss_apps::stream::{self, StreamParams};
use ompss_runtime::{FaultPlan, RunError, RuntimeConfig};

/// The applications the sweep covers.
pub const APPS: [&str; 4] = ["matmul", "stream", "nbody", "perlin"];

/// Run one application at validation scale (real byte backing, output
/// returned in `check`) under `cfg`, surfacing the structured
/// [`RunError`] — the form harnesses match on (`is_retryable`, variant
/// classification) instead of parsing panic strings.
pub fn try_run_app(name: &str, cfg: RuntimeConfig) -> Result<AppRun, RunError> {
    match name {
        "matmul" => matmul::ompss::try_run(cfg, MatmulParams::validate(), InitMode::Smp),
        "stream" => stream::ompss::try_run(cfg, StreamParams::validate()),
        "nbody" => nbody::ompss::try_run(cfg, NbodyParams::validate()),
        "perlin" => perlin::ompss::try_run(cfg, PerlinParams::validate(), false),
        other => panic!("unknown app '{other}'"),
    }
}

/// Like [`try_run_app`] but panicking with the error's `Display` on
/// failure — for call sites that treat any failure as fatal.
pub fn run_app(name: &str, cfg: RuntimeConfig) -> AppRun {
    try_run_app(name, cfg).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// The two topologies the sweep exercises: the paper's single-node
/// multi-GPU setting and its multi-node cluster setting.
pub fn topologies() -> [(&'static str, RuntimeConfig); 2] {
    [("multi_gpu", RuntimeConfig::multi_gpu(2)), ("cluster", RuntimeConfig::gpu_cluster(2))]
}

/// Raise the retry budgets for probabilistic sweeps: at moderate rates
/// a message can be unlucky several times in a row, and the sweep
/// asserts recovery, not budget tuning. (The pinned defect-class tests
/// keep the default budgets.)
pub fn with_big_budgets(cfg: RuntimeConfig) -> RuntimeConfig {
    cfg.with_task_retry_budget(8).with_am_retry_budget(16)
}

/// Chaos run of `app` on `cfg` under an explicit `plan`, with budgets
/// raised.
pub fn chaos_run(app: &str, cfg: RuntimeConfig, plan: Arc<FaultPlan>) -> AppRun {
    run_app(app, with_big_budgets(cfg.with_fault_plan(plan)))
}

/// Fallible [`chaos_run`]: same raised budgets, structured error out.
pub fn try_chaos_run(
    app: &str,
    cfg: RuntimeConfig,
    plan: Arc<FaultPlan>,
) -> Result<AppRun, RunError> {
    try_run_app(app, with_big_budgets(cfg.with_fault_plan(plan)))
}

/// Fetch the validation output of a run, which validation-scale app
/// configs always produce.
pub fn output_of(run: &AppRun) -> &[f32] {
    run.check.as_deref().expect("validation-scale app run carries its output")
}
