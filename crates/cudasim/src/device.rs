//! The simulated GPU device: engines, streams, events.
//!
//! Mirrors the CUDA 3.2 behaviours the paper's GPU layer (§III-D2) is
//! built around:
//!
//! * kernels on one device serialise on the compute engine;
//! * host↔device copies occupy a DMA copy engine and the PCIe link;
//! * copies from *pageable* host memory cannot overlap kernels — CUDA
//!   makes them synchronous — modelled by having unpinned copies also
//!   occupy the compute engine;
//! * copies from *pinned* buffers on a separate stream overlap with
//!   kernel execution (the basis of the runtime's `overlap` option);
//! * events record completion points a host thread can synchronise on.
//!
//! A [`Stream`] is a FIFO executed by a daemon process: operations run
//! in issue order within a stream, and concurrently across streams
//! subject to engine availability — the same concurrency contract CUDA
//! streams give.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::Mutex;

use ompss_sim::{
    delay, process, Channel, DeviceFuse, FaultClass, FaultPlan, Semaphore, Signal, SimDuration,
    SimResult,
};

use crate::spec::{GpuSpec, KernelCost};

/// Direction of a host↔device copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyDir {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
}

/// An injected device-side failure, reported through the [`CudaEvent`]
/// of the operation it struck (the analogue of a sticky CUDA error code
/// returned by `cudaEventSynchronize`). The runtime reacts by retrying
/// the task or migrating away from the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuFault {
    /// The kernel launched but did not retire correctly; its effect was
    /// not applied. Re-launching is safe.
    KernelFailed,
    /// An asynchronous copy was detected corrupt on arrival; its effect
    /// was not applied. Re-issuing the copy is safe.
    CopyFailed,
    /// The whole device dropped off the bus. Every subsequent operation
    /// on it fails instantly with this fault.
    DeviceLost,
}

/// Completion token for an asynchronous stream operation — the analogue
/// of a recorded `cudaEvent_t`.
#[derive(Clone)]
pub struct CudaEvent {
    signal: Signal,
    fault: Arc<Mutex<Option<GpuFault>>>,
}

impl CudaEvent {
    fn new() -> Self {
        CudaEvent { signal: Signal::new(), fault: Arc::new(Mutex::new(None)) }
    }

    /// True once the operation (and everything before it in its stream)
    /// has completed.
    pub fn query(&self) -> bool {
        self.signal.is_set()
    }

    /// Park until the operation completes (`cudaEventSynchronize`).
    pub async fn synchronize(&self) -> SimResult<()> {
        self.signal.wait().await
    }

    /// After completion: the injected fault that struck this operation,
    /// if any. `None` means the operation (and its effect) succeeded.
    pub fn fault(&self) -> Option<GpuFault> {
        *self.fault.lock()
    }
}

/// Side effect run at the completion instant of a stream operation —
/// the real byte movement or kernel arithmetic. Runs inside a
/// simulation process, so [`ompss_sim::now`] is available.
pub type Effect = Box<dyn FnOnce() + Send>;

enum StreamOp {
    Memcpy { dir: CopyDir, bytes: u64, pinned: bool, effect: Option<Effect>, done: CudaEvent },
    Kernel { cost: KernelCost, effect: Option<Effect>, done: CudaEvent },
    Marker { done: CudaEvent },
}

/// Cumulative device counters.
#[derive(Debug, Default, Clone)]
pub struct GpuStats {
    /// Kernels launched.
    pub kernels: u64,
    /// Virtual time spent executing kernel bodies.
    pub kernel_time: SimDuration,
    /// Host→device copies and bytes.
    pub h2d_copies: u64,
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Device→host copies.
    pub d2h_copies: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Bytes copied through page-locked host buffers (either direction).
    pub pinned_bytes: u64,
    /// Bytes copied from/to pageable host memory.
    pub pageable_bytes: u64,
    /// Virtual time spent on PCIe transfers.
    pub copy_time: SimDuration,
}

struct DeviceInner {
    spec: GpuSpec,
    name: String,
    compute: Semaphore,
    copy: Semaphore,
    pcie: Semaphore,
    stats: Mutex<GpuStats>,
    lost: AtomicBool,
    faults: Mutex<Option<(Arc<FaultPlan>, Arc<DeviceFuse>)>>,
}

/// A simulated GPU.
///
/// Clones share the device. Operations can be issued synchronously
/// (blocking the calling process, like the default CUDA stream) or
/// through [`Stream`]s created with [`GpuDevice::create_stream`].
pub struct GpuDevice {
    inner: Arc<DeviceInner>,
}

impl Clone for GpuDevice {
    fn clone(&self) -> Self {
        GpuDevice { inner: self.inner.clone() }
    }
}

impl GpuDevice {
    /// Create a device from its spec.
    pub fn new(name: impl Into<String>, spec: GpuSpec) -> Self {
        GpuDevice {
            inner: Arc::new(DeviceInner {
                compute: Semaphore::new(1),
                copy: Semaphore::new(spec.copy_engines as u64),
                pcie: Semaphore::new(1),
                stats: Mutex::new(GpuStats::default()),
                lost: AtomicBool::new(false),
                faults: Mutex::new(None),
                name: name.into(),
                spec,
            }),
        }
    }

    /// Arm chaos injection: the device consults `plan` on the fallible
    /// (`try_*` / stream) paths for kernel failures, async-copy
    /// corruption and whole-device loss. The shared `fuse` caps loss so
    /// at least one device in the machine always survives.
    pub fn set_fault_plan(&self, plan: Arc<FaultPlan>, fuse: Arc<DeviceFuse>) {
        *self.inner.faults.lock() = Some((plan, fuse));
    }

    /// True once the device has been lost to an injected failure. All
    /// further fallible operations on it fail fast with
    /// [`GpuFault::DeviceLost`].
    pub fn is_lost(&self) -> bool {
        self.inner.lost.load(Relaxed)
    }

    /// Device spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.inner.spec
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Counters snapshot.
    pub fn stats(&self) -> GpuStats {
        self.inner.stats.lock().clone()
    }

    /// Synchronous host↔device copy (blocks the calling process until
    /// the DMA completes). `pinned` tells whether the host side is a
    /// page-locked buffer; pageable copies additionally serialise with
    /// kernel execution, as CUDA's do.
    pub async fn memcpy(
        &self,
        dir: CopyDir,
        bytes: u64,
        pinned: bool,
        effect: Option<Effect>,
    ) -> SimResult<()> {
        let r = self.do_memcpy(dir, bytes, pinned, effect, false).await?;
        debug_assert!(r.is_ok(), "non-injecting copy reported a fault");
        Ok(())
    }

    /// Fallible host↔device copy: like [`GpuDevice::memcpy`] but subject
    /// to chaos injection when a fault plan is armed. `Ok(Err(_))` means
    /// the copy was detected corrupt (time was charged, the effect was
    /// NOT applied) or the device is lost; the caller decides whether to
    /// re-issue.
    pub async fn try_memcpy(
        &self,
        dir: CopyDir,
        bytes: u64,
        pinned: bool,
        effect: Option<Effect>,
    ) -> SimResult<Result<(), GpuFault>> {
        self.do_memcpy(dir, bytes, pinned, effect, true).await
    }

    async fn do_memcpy(
        &self,
        dir: CopyDir,
        bytes: u64,
        pinned: bool,
        effect: Option<Effect>,
        inject: bool,
    ) -> SimResult<Result<(), GpuFault>> {
        let d = &self.inner;
        if inject && self.is_lost() {
            return Ok(Err(GpuFault::DeviceLost));
        }
        if !pinned {
            d.compute.acquire().await?;
        }
        d.copy.acquire().await?;
        d.pcie.acquire().await?;
        let t = if pinned { d.spec.pcie_time(bytes) } else { d.spec.pageable_time(bytes) };
        delay(t).await?;
        d.pcie.release();
        d.copy.release();
        if !pinned {
            d.compute.release();
        }
        let fault = if inject { self.roll_copy_fault() } else { None };
        if fault.is_none() {
            if let Some(e) = effect {
                e();
            }
        }
        let mut st = d.stats.lock();
        st.copy_time += t;
        if pinned {
            st.pinned_bytes += bytes;
        } else {
            st.pageable_bytes += bytes;
        }
        match dir {
            CopyDir::H2D => {
                st.h2d_copies += 1;
                st.h2d_bytes += bytes;
            }
            CopyDir::D2H => {
                st.d2h_copies += 1;
                st.d2h_bytes += bytes;
            }
        }
        Ok(match fault {
            Some(f) => Err(f),
            None => Ok(()),
        })
    }

    /// Synchronous kernel launch: blocks until the kernel retires.
    pub async fn launch(&self, cost: KernelCost, effect: Option<Effect>) -> SimResult<()> {
        let r = self.do_launch(cost, effect, false).await?;
        debug_assert!(r.is_ok(), "non-injecting launch reported a fault");
        Ok(())
    }

    /// Fallible kernel launch: like [`GpuDevice::launch`] but subject to
    /// chaos injection when a fault plan is armed. `Ok(Err(_))` means
    /// the kernel's effect was NOT applied — the launch failed, or the
    /// whole device was lost mid-kernel.
    pub async fn try_launch(
        &self,
        cost: KernelCost,
        effect: Option<Effect>,
    ) -> SimResult<Result<(), GpuFault>> {
        self.do_launch(cost, effect, true).await
    }

    async fn do_launch(
        &self,
        cost: KernelCost,
        effect: Option<Effect>,
        inject: bool,
    ) -> SimResult<Result<(), GpuFault>> {
        let d = &self.inner;
        if inject && self.is_lost() {
            return Ok(Err(GpuFault::DeviceLost));
        }
        // Launch overhead is host-side; charge it before contending.
        delay(d.spec.launch_overhead).await?;
        d.compute.acquire().await?;
        let t = cost.body_time(&d.spec);
        delay(t).await?;
        d.compute.release();
        let fault = if inject { self.roll_kernel_fault() } else { None };
        if fault.is_none() {
            if let Some(e) = effect {
                e();
            }
        }
        let mut st = d.stats.lock();
        st.kernels += 1;
        st.kernel_time += t;
        Ok(match fault {
            Some(f) => Err(f),
            None => Ok(()),
        })
    }

    /// Consult the fault plan at a kernel retirement point. Device loss
    /// is drawn first and gated by the machine-wide fuse (the last
    /// surviving device degrades a would-be loss into a kernel failure
    /// so forward progress stays possible).
    fn roll_kernel_fault(&self) -> Option<GpuFault> {
        let guard = self.inner.faults.lock();
        let (plan, fuse) = guard.as_ref()?;
        if plan.decide(FaultClass::DeviceLoss) {
            if fuse.try_claim() {
                self.inner.lost.store(true, Relaxed);
                return Some(GpuFault::DeviceLost);
            }
            return Some(GpuFault::KernelFailed);
        }
        if plan.decide(FaultClass::KernelFail) {
            return Some(GpuFault::KernelFailed);
        }
        None
    }

    /// Consult the fault plan at a copy completion point.
    fn roll_copy_fault(&self) -> Option<GpuFault> {
        let guard = self.inner.faults.lock();
        let (plan, _) = guard.as_ref()?;
        if plan.decide(FaultClass::CopyCorrupt) {
            return Some(GpuFault::CopyFailed);
        }
        None
    }

    /// Create an asynchronous stream. Its operations execute in FIFO
    /// order on a daemon process, contending for device engines with
    /// other streams.
    pub fn create_stream(&self, label: impl Into<String>) -> Stream {
        let ops: Channel<StreamOp> = Channel::new();
        let dev = self.clone();
        let rx = ops.clone();
        let label = label.into();
        process(format!("gpu:{}:stream:{label}", self.inner.name)).daemon().spawn(async move {
            while let Ok(op) = rx.recv().await {
                let r = match op {
                    StreamOp::Memcpy { dir, bytes, pinned, effect, done } => {
                        let r = dev.try_memcpy(dir, bytes, pinned, effect).await;
                        if let Ok(outcome) = &r {
                            complete(&done, outcome.err());
                        }
                        r.map(|_| ())
                    }
                    StreamOp::Kernel { cost, effect, done } => {
                        let r = dev.try_launch(cost, effect).await;
                        if let Ok(outcome) = &r {
                            complete(&done, outcome.err());
                        }
                        r.map(|_| ())
                    }
                    StreamOp::Marker { done } => {
                        complete(&done, None);
                        Ok(())
                    }
                };
                if r.is_err() {
                    break; // shutdown
                }
            }
        });
        Stream { ops }
    }
}

/// Signal a stream operation's completion event, recording any injected
/// fault first so a waiter never observes a completed event with a
/// not-yet-published fault. Stream FIFO invariant (debug builds): an
/// event completes exactly once — a second signal would mean an
/// operation was executed twice or an event token was reused across
/// operations, either of which breaks the CUDA event contract everything
/// above (kernel synchronisation, verify-mode effect observation)
/// relies on.
fn complete(done: &CudaEvent, fault: Option<GpuFault>) {
    debug_assert!(!done.query(), "stream operation completed twice");
    *done.fault.lock() = fault;
    done.signal.set();
}

/// An asynchronous CUDA-like stream. Operations are queued immediately
/// and execute in order on the device; each returns a [`CudaEvent`].
pub struct Stream {
    ops: Channel<StreamOp>,
}

impl Stream {
    /// Queue an asynchronous copy.
    pub fn memcpy_async(
        &self,
        dir: CopyDir,
        bytes: u64,
        pinned: bool,
        effect: Option<Effect>,
    ) -> CudaEvent {
        let done = CudaEvent::new();
        self.ops.send(StreamOp::Memcpy { dir, bytes, pinned, effect, done: done.clone() });
        done
    }

    /// Queue an asynchronous kernel launch.
    pub fn launch_async(&self, cost: KernelCost, effect: Option<Effect>) -> CudaEvent {
        let done = CudaEvent::new();
        self.ops.send(StreamOp::Kernel { cost, effect, done: done.clone() });
        done
    }

    /// Record an event at the current tail of the stream.
    pub fn record_event(&self) -> CudaEvent {
        let done = CudaEvent::new();
        self.ops.send(StreamOp::Marker { done: done.clone() });
        done
    }

    /// Park until everything queued so far has completed
    /// (`cudaStreamSynchronize`).
    pub async fn synchronize(&self) -> SimResult<()> {
        self.record_event().synchronize().await
    }
}

/// Accounting for the page-locked host buffer pool the runtime allocates
/// at startup (paper §III-D2: "Both GPU memory and host pinned memory
/// are allocated at startup, and then managed internally").
pub struct PinnedPool {
    inner: Mutex<PinnedInner>,
}

struct PinnedInner {
    capacity: u64,
    used: u64,
    peak: u64,
}

impl PinnedPool {
    /// A pool of `capacity` bytes of pinned host memory.
    pub fn new(capacity: u64) -> Self {
        PinnedPool { inner: Mutex::new(PinnedInner { capacity, used: 0, peak: 0 }) }
    }

    /// Reserve `bytes`; `false` if the pool is exhausted (callers then
    /// fall back to pageable transfers, losing overlap).
    pub fn try_alloc(&self, bytes: u64) -> bool {
        let mut p = self.inner.lock();
        if p.used + bytes > p.capacity {
            return false;
        }
        p.used += bytes;
        p.peak = p.peak.max(p.used);
        true
    }

    /// Return `bytes` to the pool.
    pub fn free(&self, bytes: u64) {
        let mut p = self.inner.lock();
        assert!(p.used >= bytes, "pinned pool underflow");
        p.used -= bytes;
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.inner.lock().used
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.inner.lock().peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_sim::{now, yield_now, Sim};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_spec() -> GpuSpec {
        GpuSpec {
            name: "test",
            peak_gflops: 1000.0,
            mem_bandwidth: 100.0e9,
            mem_capacity: 1 << 30,
            pcie_bandwidth: 1.0e9, // 1 GB/s: 1 MB copy = 1 ms (+latency)
            pageable_bandwidth: 1.0e9,
            pcie_latency: SimDuration::ZERO,
            copy_engines: 1,
            launch_overhead: SimDuration::ZERO,
            host_memcpy_bandwidth: 4.0e9,
        }
    }

    #[test]
    fn sync_memcpy_blocks_for_pcie_time() {
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        sim.spawn("p", async move {
            gpu.memcpy(CopyDir::H2D, 1 << 20, true, None).await.unwrap();
            assert_eq!(now().as_nanos(), 1_048_576); // 2^20 ns at 1 B/ns
            let st = gpu.stats();
            assert_eq!(st.h2d_copies, 1);
            assert_eq!(st.h2d_bytes, 1 << 20);
        });
        sim.run().unwrap();
    }

    #[test]
    fn kernels_serialise_on_compute_engine() {
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        let ends = Arc::new(Mutex::new(Vec::new()));
        for name in ["k1", "k2"] {
            let g = gpu.clone();
            let e = ends.clone();
            sim.spawn(name, async move {
                g.launch(KernelCost::fixed(SimDuration::from_millis(2)), None).await.unwrap();
                e.lock().push(now().as_nanos());
            });
        }
        sim.run().unwrap();
        assert_eq!(*ends.lock(), vec![2_000_000, 4_000_000]);
    }

    #[test]
    fn pinned_copy_overlaps_kernel_on_streams() {
        // One stream runs a 4 ms kernel, another copies 1 MB (1 ms,
        // pinned). Total must be 4 ms, not 5.
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        sim.spawn("host", async move {
            let s0 = gpu.create_stream("compute");
            let s1 = gpu.create_stream("copy");
            let k = s0.launch_async(KernelCost::fixed(SimDuration::from_millis(4)), None);
            let c = s1.memcpy_async(CopyDir::H2D, 1 << 20, true, None);
            c.synchronize().await.unwrap();
            assert!(now().as_nanos() <= 1_100_000, "copy finished during kernel");
            k.synchronize().await.unwrap();
            assert_eq!(now().as_nanos(), 4_000_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn pageable_copy_serialises_with_kernel() {
        // Same as above but the copy is NOT pinned: it must wait for the
        // kernel to release the compute engine → finishes at 5 ms.
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        sim.spawn("host", async move {
            let s0 = gpu.create_stream("compute");
            let s1 = gpu.create_stream("copy");
            let _k = s0.launch_async(KernelCost::fixed(SimDuration::from_millis(4)), None);
            yield_now().await.unwrap(); // let the kernel start first
            let c = s1.memcpy_async(CopyDir::H2D, 1 << 20, false, None);
            c.synchronize().await.unwrap();
            assert_eq!(now().as_nanos(), 5_000_000 + 1_048_576 - 1_000_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn stream_ops_execute_in_fifo_order() {
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = order.clone();
        sim.spawn("host", async move {
            let s = gpu.create_stream("s");
            let o1 = o.clone();
            let e1 = s.launch_async(
                KernelCost::fixed(SimDuration::from_millis(1)),
                Some(Box::new(move || o1.lock().push(1))),
            );
            let o2 = o.clone();
            let e2 = s.launch_async(
                KernelCost::fixed(SimDuration::from_millis(1)),
                Some(Box::new(move || o2.lock().push(2))),
            );
            e2.synchronize().await.unwrap();
            assert!(e1.query());
            assert_eq!(*o.lock(), vec![1, 2]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn effects_run_at_completion_time() {
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        let when = Arc::new(AtomicU64::new(0));
        let w = when.clone();
        sim.spawn("host", async move {
            let s = gpu.create_stream("s");
            let w2 = w.clone();
            let e = s.launch_async(
                KernelCost::fixed(SimDuration::from_millis(3)),
                Some(Box::new(move || w2.store(now().as_nanos(), Ordering::SeqCst))),
            );
            e.synchronize().await.unwrap();
        });
        sim.run().unwrap();
        assert_eq!(when.load(Ordering::SeqCst), 3_000_000);
    }

    #[test]
    fn two_copy_engines_allow_bidirectional_overlap() {
        // With 2 engines but a single PCIe link semaphore, copies still
        // serialise on the link; engines matter when pcie is free. Here
        // we check the copy-engine permits are respected.
        let mut spec = test_spec();
        spec.copy_engines = 2;
        let gpu = GpuDevice::new("g", spec);
        assert_eq!(gpu.spec().copy_engines, 2);
    }

    #[test]
    fn event_query_before_completion_is_false() {
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        sim.spawn("host", async move {
            let s = gpu.create_stream("s");
            let e = s.launch_async(KernelCost::fixed(SimDuration::from_millis(1)), None);
            assert!(!e.query());
            e.synchronize().await.unwrap();
            assert!(e.query());
        });
        sim.run().unwrap();
    }

    #[test]
    fn pinned_pool_accounting() {
        let pool = PinnedPool::new(100);
        assert!(pool.try_alloc(60));
        assert!(!pool.try_alloc(50));
        assert!(pool.try_alloc(40));
        pool.free(60);
        assert_eq!(pool.used(), 40);
        assert_eq!(pool.peak(), 100);
    }

    #[test]
    #[should_panic(expected = "pinned pool underflow")]
    fn pinned_pool_underflow_panics() {
        let pool = PinnedPool::new(10);
        pool.free(1);
    }

    #[test]
    fn forced_kernel_failure_skips_effect_and_is_reported() {
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        gpu.set_fault_plan(
            Arc::new(FaultPlan::quiet(7).with_forced(FaultClass::KernelFail, 1)),
            DeviceFuse::new(2),
        );
        let ran = Arc::new(AtomicU64::new(0));
        let r = ran.clone();
        sim.spawn("host", async move {
            let s = gpu.create_stream("s");
            let r1 = r.clone();
            let e1 = s.launch_async(
                KernelCost::fixed(SimDuration::from_millis(1)),
                Some(Box::new(move || {
                    r1.fetch_add(1, Ordering::SeqCst);
                })),
            );
            let r2 = r.clone();
            let e2 = s.launch_async(
                KernelCost::fixed(SimDuration::from_millis(1)),
                Some(Box::new(move || {
                    r2.fetch_add(1, Ordering::SeqCst);
                })),
            );
            e2.synchronize().await.unwrap();
            assert_eq!(e1.fault(), Some(GpuFault::KernelFailed));
            assert_eq!(e2.fault(), None);
            // Time was still charged for the failed kernel.
            assert_eq!(now().as_nanos(), 2_000_000);
        });
        sim.run().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1, "failed kernel's effect must not run");
    }

    #[test]
    fn forced_device_loss_fails_everything_after() {
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        gpu.set_fault_plan(
            Arc::new(FaultPlan::quiet(7).with_forced(FaultClass::DeviceLoss, 1)),
            DeviceFuse::new(2),
        );
        let g2 = gpu.clone();
        sim.spawn("host", async move {
            let k = g2.try_launch(KernelCost::fixed(SimDuration::from_millis(1)), None).await;
            assert_eq!(k.unwrap(), Err(GpuFault::DeviceLost));
            assert!(g2.is_lost());
            // Later operations fail instantly, charging no device time.
            let t0 = now();
            let k2 = g2.try_launch(KernelCost::fixed(SimDuration::from_millis(1)), None).await;
            assert_eq!(k2.unwrap(), Err(GpuFault::DeviceLost));
            let c = g2.try_memcpy(CopyDir::H2D, 1 << 20, true, None).await;
            assert_eq!(c.unwrap(), Err(GpuFault::DeviceLost));
            assert_eq!(now(), t0);
        });
        sim.run().unwrap();
        assert!(gpu.is_lost());
    }

    #[test]
    fn last_surviving_device_cannot_be_lost() {
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        // A single-device machine: the fuse refuses the loss and the
        // draw degrades into a recoverable kernel failure.
        gpu.set_fault_plan(
            Arc::new(FaultPlan::quiet(7).with_forced(FaultClass::DeviceLoss, 1)),
            DeviceFuse::new(1),
        );
        let g2 = gpu.clone();
        sim.spawn("host", async move {
            let k = g2.try_launch(KernelCost::fixed(SimDuration::from_millis(1)), None).await;
            assert_eq!(k.unwrap(), Err(GpuFault::KernelFailed));
            assert!(!g2.is_lost());
        });
        sim.run().unwrap();
    }

    #[test]
    fn forced_copy_corruption_charges_time_and_retry_succeeds() {
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        gpu.set_fault_plan(
            Arc::new(FaultPlan::quiet(7).with_forced(FaultClass::CopyCorrupt, 1)),
            DeviceFuse::new(2),
        );
        let applied = Arc::new(AtomicU64::new(0));
        let g2 = gpu.clone();
        let a = applied.clone();
        sim.spawn("host", async move {
            let a1 = a.clone();
            let eff: Effect = Box::new(move || {
                a1.fetch_add(1, Ordering::SeqCst);
            });
            let r = g2.try_memcpy(CopyDir::H2D, 1 << 20, true, Some(eff)).await;
            assert_eq!(r.unwrap(), Err(GpuFault::CopyFailed));
            assert_eq!(now().as_nanos(), 1_048_576, "corrupt copy still burned the wire");
            let a2 = a.clone();
            let eff: Effect = Box::new(move || {
                a2.fetch_add(1, Ordering::SeqCst);
            });
            let r = g2.try_memcpy(CopyDir::H2D, 1 << 20, true, Some(eff)).await;
            assert_eq!(r.unwrap(), Ok(()));
        });
        sim.run().unwrap();
        assert_eq!(applied.load(Ordering::SeqCst), 1, "only the clean copy's effect ran");
        assert_eq!(gpu.stats().h2d_copies, 2);
    }

    #[test]
    fn unarmed_device_never_injects() {
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        sim.spawn("host", async move {
            for _ in 0..32 {
                let k = gpu.try_launch(KernelCost::fixed(SimDuration::from_micros(1)), None).await;
                assert_eq!(k.unwrap(), Ok(()));
                let c = gpu.try_memcpy(CopyDir::D2H, 64, true, None).await;
                assert_eq!(c.unwrap(), Ok(()));
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn kernel_stats_accumulate() {
        let sim = Sim::new();
        let gpu = GpuDevice::new("g", test_spec());
        let g = gpu.clone();
        sim.spawn("p", async move {
            for _ in 0..3 {
                g.launch(KernelCost::fixed(SimDuration::from_millis(1)), None).await.unwrap();
            }
        });
        sim.run().unwrap();
        let st = gpu.stats();
        assert_eq!(st.kernels, 3);
        assert_eq!(st.kernel_time, SimDuration::from_millis(3));
    }
}
