//! # ompss-cudasim — a CUDA-like simulated GPU layer
//!
//! The paper's GPU architecture layer (§III-D2) sits on NVIDIA's CUDA
//! 3.2 runtime; no GPU is available here, so this crate reproduces the
//! CUDA behaviours the Nanos++ techniques depend on:
//!
//! * [`GpuDevice`] — compute engine, DMA copy engines and a PCIe link,
//!   all modelled as contended resources on the virtual clock;
//! * [`Stream`]/[`CudaEvent`] — in-order asynchronous operation queues
//!   with recordable completion events;
//! * pinned-vs-pageable copy semantics — only page-locked host buffers
//!   can overlap kernels, which is why the runtime stages user data
//!   through an internal [`PinnedPool`];
//! * [`KernelCost`] — roofline-style analytical kernel timing with
//!   [`GpuSpec`] presets for the paper's Tesla S2050 and GTX 480.
//!
//! Operations can carry an [`Effect`] closure executed at the
//! completion instant — this is where the real byte movement and real
//! kernel arithmetic happen, keeping simulations numerically checkable.

#![warn(missing_docs)]

mod device;
mod spec;

pub use device::{CopyDir, CudaEvent, Effect, GpuDevice, GpuFault, GpuStats, PinnedPool, Stream};
pub use spec::{GpuSpec, KernelCost};
