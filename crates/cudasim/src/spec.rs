//! Device specifications and kernel cost models.
//!
//! We do not have Fermi-era GPUs; what the runtime techniques under
//! evaluation (caching, scheduling, overlap, prefetch) respond to is the
//! *ratio* between kernel time and transfer time. Kernels therefore
//! carry an analytical cost — a roofline-style `max(compute, memory)`
//! plus launch overhead — parameterised by the published specs of the
//! paper's devices (§IV-A1).

use ompss_sim::SimDuration;

/// Static description of a simulated GPU.
#[derive(Debug, Clone)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Device memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Effective host↔device PCIe bandwidth for page-locked (pinned)
    /// transfers, in bytes/s.
    pub pcie_bandwidth: f64,
    /// Effective bandwidth for pageable transfers (bounced through a
    /// driver staging buffer), in bytes/s.
    pub pageable_bandwidth: f64,
    /// PCIe transfer setup latency.
    pub pcie_latency: SimDuration,
    /// Number of DMA copy engines (1 on GeForce Fermi, 2 on Tesla).
    pub copy_engines: u32,
    /// Fixed kernel launch overhead.
    pub launch_overhead: SimDuration,
    /// Host-side `memcpy` bandwidth used when staging user memory into
    /// pinned buffers (bytes/s).
    pub host_memcpy_bandwidth: f64,
}

impl GpuSpec {
    /// One GPU of the Tesla S2050 quad in the paper's multi-GPU node:
    /// 1.03 TFLOP/s SP peak, 2.62 GB usable memory, 148 GB/s memory
    /// bandwidth, PCIe 2.0 x16 shared through the S2050 host link.
    pub fn tesla_s2050() -> Self {
        GpuSpec {
            name: "Tesla S2050",
            peak_gflops: 1030.0,
            mem_bandwidth: 148.0e9,
            mem_capacity: 2_620_000_000,
            pcie_bandwidth: 5.5e9,
            pageable_bandwidth: 3.3e9,
            pcie_latency: SimDuration::from_micros(15),
            copy_engines: 2,
            launch_overhead: SimDuration::from_micros(10),
            host_memcpy_bandwidth: 4.0e9,
        }
    }

    /// The GTX 480 in each node of the paper's GPU cluster: 1.35 TFLOP/s
    /// SP, 1.5 GB memory, 177.4 GB/s memory bandwidth, one copy engine.
    pub fn gtx_480() -> Self {
        GpuSpec {
            name: "GTX 480",
            peak_gflops: 1350.0,
            mem_bandwidth: 177.4e9,
            mem_capacity: 1_500_000_000,
            pcie_bandwidth: 5.5e9,
            pageable_bandwidth: 3.3e9,
            pcie_latency: SimDuration::from_micros(15),
            copy_engines: 1,
            launch_overhead: SimDuration::from_micros(10),
            host_memcpy_bandwidth: 4.0e9,
        }
    }

    /// Time for a PCIe transfer of `bytes` from/to pinned host memory.
    pub fn pcie_time(&self, bytes: u64) -> SimDuration {
        self.pcie_latency + SimDuration::from_secs_f64(bytes as f64 / self.pcie_bandwidth)
    }

    /// Time for a PCIe transfer of `bytes` from/to pageable host memory.
    pub fn pageable_time(&self, bytes: u64) -> SimDuration {
        self.pcie_latency + SimDuration::from_secs_f64(bytes as f64 / self.pageable_bandwidth)
    }

    /// Time to stage `bytes` of pageable user memory into a pinned
    /// buffer (one host memcpy).
    pub fn staging_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.host_memcpy_bandwidth)
    }
}

/// Analytical cost of one kernel invocation.
///
/// The execution time on a device is
/// `launch_overhead + fixed + max(flops / (peak · compute_eff),
/// bytes / (mem_bw · memory_eff))` — a simple roofline. Efficiencies
/// default to values typical of well-tuned Fermi kernels (CUBLAS sgemm
/// reaches ~60 % of peak; STREAM-style kernels ~80 % of bandwidth).
#[derive(Debug, Clone, Copy)]
pub struct KernelCost {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Device-memory bytes moved (reads + writes).
    pub bytes: f64,
    /// Fraction of peak FLOP/s this kernel achieves.
    pub compute_efficiency: f64,
    /// Fraction of peak bandwidth this kernel achieves.
    pub memory_efficiency: f64,
    /// Additional fixed time per invocation.
    pub fixed: SimDuration,
}

impl KernelCost {
    /// A compute-bound kernel (e.g. GEMM) at the given efficiency.
    pub fn compute_bound(flops: f64, efficiency: f64) -> Self {
        KernelCost {
            flops,
            bytes: 0.0,
            compute_efficiency: efficiency,
            memory_efficiency: 0.8,
            fixed: SimDuration::ZERO,
        }
    }

    /// A memory-bound kernel (e.g. STREAM triad) at the given bandwidth
    /// efficiency.
    pub fn memory_bound(bytes: f64, efficiency: f64) -> Self {
        KernelCost {
            flops: 0.0,
            bytes,
            compute_efficiency: 0.6,
            memory_efficiency: efficiency,
            fixed: SimDuration::ZERO,
        }
    }

    /// A roofline kernel with both compute and memory components.
    pub fn roofline(flops: f64, bytes: f64, compute_eff: f64, memory_eff: f64) -> Self {
        KernelCost {
            flops,
            bytes,
            compute_efficiency: compute_eff,
            memory_efficiency: memory_eff,
            fixed: SimDuration::ZERO,
        }
    }

    /// A fixed-duration kernel.
    pub fn fixed(d: SimDuration) -> Self {
        KernelCost {
            flops: 0.0,
            bytes: 0.0,
            compute_efficiency: 1.0,
            memory_efficiency: 1.0,
            fixed: d,
        }
    }

    /// Add fixed time to any cost.
    pub fn plus_fixed(mut self, d: SimDuration) -> Self {
        self.fixed += d;
        self
    }

    /// Execution time on `spec`, excluding launch overhead.
    pub fn body_time(&self, spec: &GpuSpec) -> SimDuration {
        let compute = if self.flops > 0.0 {
            self.flops / (spec.peak_gflops * 1e9 * self.compute_efficiency)
        } else {
            0.0
        };
        let memory = if self.bytes > 0.0 {
            self.bytes / (spec.mem_bandwidth * self.memory_efficiency)
        } else {
            0.0
        };
        self.fixed + SimDuration::from_secs_f64(compute.max(memory))
    }

    /// Total time on `spec`, including launch overhead.
    pub fn time(&self, spec: &GpuSpec) -> SimDuration {
        spec.launch_overhead + self.body_time(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_tile_time_is_milliseconds_on_fermi() {
        // 1024³ sgemm tile: 2 * 1024^3 flops ≈ 2.15 GFLOP.
        let spec = GpuSpec::gtx_480();
        let cost = KernelCost::compute_bound(2.0 * 1024f64.powi(3), 0.6);
        let t = cost.time(&spec).as_secs_f64();
        // ≈ 2.15e9 / (1.35e12 * 0.6) ≈ 2.65 ms
        assert!(t > 2.0e-3 && t < 3.5e-3, "t={t}");
    }

    #[test]
    fn stream_kernel_is_bandwidth_limited() {
        // triad over 32 MB reads 2 arrays and writes 1: 96 MB traffic.
        let spec = GpuSpec::tesla_s2050();
        let cost = KernelCost::memory_bound(96.0e6, 0.8);
        let t = cost.body_time(&spec).as_secs_f64();
        assert!((t - 96.0e6 / (148.0e9 * 0.8)).abs() < 1e-9);
    }

    #[test]
    fn roofline_takes_the_max() {
        let spec = GpuSpec::gtx_480();
        let compute_heavy = KernelCost::roofline(1e12, 1.0, 1.0, 1.0);
        let memory_heavy = KernelCost::roofline(1.0, 1e12, 1.0, 1.0);
        assert!(
            compute_heavy.body_time(&spec) > KernelCost::fixed(SimDuration::ZERO).body_time(&spec)
        );
        // memory-heavy: 1e12 / 177.4e9 ≈ 5.6 s ≫ compute term
        assert!(memory_heavy.body_time(&spec).as_secs_f64() > 5.0);
    }

    #[test]
    fn fixed_cost_and_launch_overhead() {
        let spec = GpuSpec::gtx_480();
        let cost = KernelCost::fixed(SimDuration::from_micros(100));
        assert_eq!(cost.time(&spec), SimDuration::from_micros(110));
    }

    #[test]
    fn pcie_time_scales_with_bytes() {
        let spec = GpuSpec::gtx_480();
        let t1 = spec.pcie_time(1 << 20).as_secs_f64();
        let t4 = spec.pcie_time(4 << 20).as_secs_f64();
        assert!(t4 > t1 * 2.0, "dominated by bandwidth term");
        // 4 MiB at 5.5 GB/s ≈ 0.76 ms plus 15 µs latency.
        assert!(t4 > 7e-4 && t4 < 9e-4, "t4={t4}");
    }

    #[test]
    fn staging_time_uses_host_memcpy_bandwidth() {
        let spec = GpuSpec::gtx_480();
        let t = spec.staging_time(4_000_000_000).as_secs_f64();
        assert!((t - 1.0).abs() < 1e-9);
    }
}
