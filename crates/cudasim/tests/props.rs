//! Property tests of the simulated CUDA layer: stream FIFO ordering,
//! engine exclusivity and stat conservation under arbitrary operation
//! mixes.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use ompss_cudasim::{CopyDir, GpuDevice, GpuSpec, KernelCost};
use ompss_sim::{now, yield_now, Sim, SimDuration};

fn spec() -> GpuSpec {
    GpuSpec {
        name: "prop",
        peak_gflops: 1000.0,
        mem_bandwidth: 100.0e9,
        mem_capacity: 1 << 30,
        pcie_bandwidth: 1.0e9,
        pageable_bandwidth: 0.5e9,
        pcie_latency: SimDuration::ZERO,
        copy_engines: 1,
        launch_overhead: SimDuration::ZERO,
        host_memcpy_bandwidth: 4.0e9,
    }
}

/// A generated stream operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Kernel(u64),           // duration ns
    Copy(bool, u64, bool), // (h2d, bytes, pinned)
}

fn gen_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..10_000).prop_map(Op::Kernel),
        (any::<bool>(), 1u64..10_000, any::<bool>()).prop_map(|(d, b, p)| Op::Copy(d, b, p)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Operations on one stream complete strictly in issue order, and
    /// the device stats account every op exactly once.
    #[test]
    fn single_stream_is_fifo_and_stats_conserve(ops in proptest::collection::vec(gen_op(), 1..25)) {
        let sim = Sim::new();
        let dev = GpuDevice::new("g", spec());
        let completions = Arc::new(Mutex::new(Vec::new()));
        let ops2 = ops.clone();
        let dev2 = dev.clone();
        let comp = completions.clone();
        sim.spawn("host", async move {
            let s = dev2.create_stream("s");
            let mut events = Vec::new();
            for (i, op) in ops2.iter().enumerate() {
                let c = comp.clone();
                let effect = Some(Box::new(move || {
                    c.lock().push((i, now()));
                }) as ompss_cudasim::Effect);
                let ev = match *op {
                    Op::Kernel(ns) => {
                        s.launch_async(KernelCost::fixed(SimDuration::from_nanos(ns)), effect)
                    }
                    Op::Copy(h2d, bytes, pinned) => {
                        let dir = if h2d { CopyDir::H2D } else { CopyDir::D2H };
                        s.memcpy_async(dir, bytes, pinned, effect)
                    }
                };
                events.push(ev);
            }
            for ev in &events {
                ev.synchronize().await.unwrap();
            }
        });
        sim.run().unwrap();
        let done = completions.lock().clone();
        prop_assert_eq!(done.len(), ops.len());
        // Issue order == completion order, with non-decreasing times.
        for (k, &(i, t)) in done.iter().enumerate() {
            prop_assert_eq!(i, k, "stream executed out of order");
            if k > 0 {
                prop_assert!(t >= done[k - 1].1);
            }
        }
        let st = dev.stats();
        let kernels = ops.iter().filter(|o| matches!(o, Op::Kernel(_))).count();
        let h2d = ops.iter().filter(|o| matches!(o, Op::Copy(true, _, _))).count();
        let d2h = ops.iter().filter(|o| matches!(o, Op::Copy(false, _, _))).count();
        prop_assert_eq!(st.kernels as usize, kernels);
        prop_assert_eq!(st.h2d_copies as usize, h2d);
        prop_assert_eq!(st.d2h_copies as usize, d2h);
        let total_kernel_ns: u64 =
            ops.iter().filter_map(|o| if let Op::Kernel(ns) = o { Some(*ns) } else { None }).sum();
        prop_assert_eq!(st.kernel_time.as_nanos(), total_kernel_ns);
    }

    /// Kernels across any number of streams serialise on the single
    /// compute engine: total elapsed ≥ sum of kernel durations.
    #[test]
    fn compute_engine_is_exclusive(
        durations in proptest::collection::vec(100u64..5_000, 2..10),
        streams in 1usize..4,
    ) {
        let sim = Sim::new();
        let dev = GpuDevice::new("g", spec());
        let total: u64 = durations.iter().sum();
        let dev2 = dev.clone();
        sim.spawn("host", async move {
            let ss: Vec<_> = (0..streams).map(|i| dev2.create_stream(format!("s{i}"))).collect();
            let evs: Vec<_> = durations
                .iter()
                .enumerate()
                .map(|(i, &ns)| {
                    ss[i % streams]
                        .launch_async(KernelCost::fixed(SimDuration::from_nanos(ns)), None)
                })
                .collect();
            for ev in &evs {
                ev.synchronize().await.unwrap();
            }
            assert!(now().as_nanos() >= total, "kernels overlapped on one engine");
        });
        sim.run().unwrap();
    }

    /// Pinned copies on a second stream finish during a long kernel;
    /// pageable copies never do.
    #[test]
    fn overlap_requires_pinned(bytes in 1_000u64..100_000) {
        for pinned in [true, false] {
            let sim = Sim::new();
            let dev = GpuDevice::new("g", spec());
            sim.spawn("host", async move {
                let s0 = dev.create_stream("compute");
                let s1 = dev.create_stream("copy");
                let kernel_ns = 10_000_000; // 10 ms, far longer than the copy
                let k = s0.launch_async(KernelCost::fixed(SimDuration::from_nanos(kernel_ns)), None);
                yield_now().await.unwrap(); // ensure the kernel grabs the engine first
                let c = s1.memcpy_async(CopyDir::H2D, bytes, pinned, None);
                c.synchronize().await.unwrap();
                let copy_done = now().as_nanos();
                if pinned {
                    assert!(copy_done < kernel_ns, "pinned copy must overlap the kernel");
                } else {
                    assert!(copy_done >= kernel_ns, "pageable copy must serialise");
                }
                k.synchronize().await.unwrap();
            });
            sim.run().unwrap();
        }
    }
}
