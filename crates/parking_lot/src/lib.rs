//! In-tree drop-in subset of the `parking_lot` API, backed by
//! `std::sync`. The build environment has no access to crates.io, so
//! the workspace vendors the tiny slice of the API it actually uses:
//! non-poisoning `Mutex`/`RwLock` (a guard is returned directly from
//! `lock()`, panics from a holder do not poison the lock) and a
//! `Condvar` whose `wait` takes the guard by `&mut`.
//!
//! Semantics match parking_lot where the runtime depends on them:
//! poisoning is transparently ignored (the simulator's determinism
//! makes a poisoned lock unrecoverable anyway, so unwinding the panic
//! outward is the right behaviour).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases the lock on drop.
///
/// Holds an `Option` so [`Condvar::wait`] can temporarily take the
/// underlying std guard by value; it is `Some` at all other times.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires unique ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a reader-writer lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a holder panicked");
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
