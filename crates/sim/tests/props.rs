//! Property tests of the DES primitives: conservation and fairness
//! invariants under randomized schedules.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use ompss_sim::{delay, spawn, Channel, Semaphore, Sim, SimDuration};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever interleaving the delays force, every message sent is
    /// received exactly once and per-producer FIFO order is preserved.
    #[test]
    fn channel_conserves_messages_with_per_producer_fifo(
        delays in proptest::collection::vec((0u64..50, 0u64..50), 1..20)
    ) {
        let sim = Sim::new();
        let ch: Channel<(usize, u32)> = Channel::new();
        let n_producers = delays.len();
        let msgs_per = 5u32;
        for (p, (d0, d1)) in delays.clone().into_iter().enumerate() {
            let tx = ch.clone();
            sim.spawn(format!("producer{p}"), async move {
                for m in 0..msgs_per {
                    delay(SimDuration::from_nanos(d0 + (m as u64 * d1) % 17)).await.unwrap();
                    tx.send((p, m));
                }
            });
        }
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = got.clone();
        let rx = ch.clone();
        sim.process("consumer").daemon().spawn(async move {
            while let Ok(v) = rx.recv().await {
                g.lock().push(v);
            }
        });
        sim.run().unwrap();
        let received = got.lock().clone();
        prop_assert_eq!(received.len(), n_producers * msgs_per as usize);
        // Per-producer FIFO.
        for p in 0..n_producers {
            let seq: Vec<u32> =
                received.iter().filter(|(pp, _)| *pp == p).map(|&(_, m)| m).collect();
            prop_assert_eq!(seq, (0..msgs_per).collect::<Vec<_>>());
        }
    }

    /// Semaphore permits are conserved: with capacity C, at most C
    /// holders ever overlap, and everyone eventually gets in.
    #[test]
    fn semaphore_never_oversubscribes(
        cap in 1u64..5,
        workers in 2usize..12,
        hold in 1u64..40,
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(cap);
        let active = Arc::new(Mutex::new((0i64, 0i64))); // (current, max)
        let served = Arc::new(Mutex::new(0usize));
        for w in 0..workers {
            let s = sem.clone();
            let a = active.clone();
            let done = served.clone();
            sim.spawn(format!("w{w}"), async move {
                delay(SimDuration::from_nanos((w as u64 * 7) % 13)).await.unwrap();
                s.acquire().await.unwrap();
                {
                    let mut g = a.lock();
                    g.0 += 1;
                    g.1 = g.1.max(g.0);
                }
                delay(SimDuration::from_nanos(hold)).await.unwrap();
                a.lock().0 -= 1;
                s.release();
                *done.lock() += 1;
            });
        }
        sim.run().unwrap();
        let (cur, max) = *active.lock();
        prop_assert_eq!(cur, 0);
        prop_assert!(max as u64 <= cap, "max holders {} exceeded capacity {}", max, cap);
        prop_assert_eq!(*served.lock(), workers);
    }

    /// Determinism: any program built from random delays produces the
    /// same end time twice.
    #[test]
    fn random_delay_programs_are_deterministic(
        prog in proptest::collection::vec(proptest::collection::vec(1u64..100, 1..10), 1..10)
    ) {
        let run = |prog: Vec<Vec<u64>>| {
            let sim = Sim::new();
            for (i, delays) in prog.into_iter().enumerate() {
                sim.spawn(format!("p{i}"), async move {
                    for d in delays {
                        delay(SimDuration::from_nanos(d)).await.unwrap();
                    }
                });
            }
            let r = sim.run().unwrap();
            (r.end_time, r.events)
        };
        prop_assert_eq!(run(prog.clone()), run(prog));
    }

    /// Executor determinism under the full primitive mix: an interleaved
    /// spawn/delay/channel workload produces the identical event order
    /// (observed trace) and identical RunReport fingerprint on every run.
    #[test]
    fn interleaved_spawn_delay_channel_workloads_fingerprint_identically(
        groups in proptest::collection::vec((1u64..60, 1u64..8, 1u64..6), 1..12)
    ) {
        let run = |groups: &[(u64, u64, u64)]| {
            let trace = Arc::new(Mutex::new(Vec::new()));
            let sim = Sim::new();
            let ch: Channel<u64> = Channel::new();
            for (g, &(d, msgs, kids)) in groups.iter().enumerate() {
                let tx = ch.clone();
                let tr = trace.clone();
                sim.spawn(format!("g{g}"), async move {
                    for k in 0..kids {
                        let tx = tx.clone();
                        let tr = tr.clone();
                        spawn(format!("g{g}k{k}"), async move {
                            delay(SimDuration::from_nanos(d * (k + 1))).await.unwrap();
                            for m in 0..msgs {
                                tx.send(g as u64 * 1000 + k * 100 + m);
                                delay(SimDuration::from_nanos(d % 7 + 1)).await.unwrap();
                            }
                            tr.lock().push((ompss_sim::now().as_nanos(), g as u64, k));
                        });
                    }
                    delay(SimDuration::from_nanos(d)).await.unwrap();
                });
            }
            let total: u64 = groups.iter().map(|&(_, m, k)| m * k).sum();
            let rx = ch.clone();
            let tr = trace.clone();
            sim.spawn("drain", async move {
                for _ in 0..total {
                    let v = rx.recv().await.unwrap();
                    tr.lock().push((ompss_sim::now().as_nanos(), u64::MAX, v));
                }
            });
            let r = sim.run().unwrap();
            let t = trace.lock().clone();
            (t, (r.end_time.as_nanos(), r.events, r.clock_advances, r.processes as u64))
        };
        let (trace_a, fp_a) = run(&groups);
        let (trace_b, fp_b) = run(&groups);
        prop_assert_eq!(trace_a, trace_b, "event order diverged between identical runs");
        prop_assert_eq!(fp_a, fp_b, "RunReport fingerprint diverged between identical runs");
    }
}
