//! Property tests of the DES primitives: conservation and fairness
//! invariants under randomized schedules.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use ompss_sim::{delay, spawn, Channel, Semaphore, Sim, SimDuration};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever interleaving the delays force, every message sent is
    /// received exactly once and per-producer FIFO order is preserved.
    #[test]
    fn channel_conserves_messages_with_per_producer_fifo(
        delays in proptest::collection::vec((0u64..50, 0u64..50), 1..20)
    ) {
        let sim = Sim::new();
        let ch: Channel<(usize, u32)> = Channel::new();
        let n_producers = delays.len();
        let msgs_per = 5u32;
        for (p, (d0, d1)) in delays.clone().into_iter().enumerate() {
            let tx = ch.clone();
            sim.spawn(format!("producer{p}"), async move {
                for m in 0..msgs_per {
                    delay(SimDuration::from_nanos(d0 + (m as u64 * d1) % 17)).await.unwrap();
                    tx.send((p, m));
                }
            });
        }
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = got.clone();
        let rx = ch.clone();
        sim.process("consumer").daemon().spawn(async move {
            while let Ok(v) = rx.recv().await {
                g.lock().push(v);
            }
        });
        sim.run().unwrap();
        let received = got.lock().clone();
        prop_assert_eq!(received.len(), n_producers * msgs_per as usize);
        // Per-producer FIFO.
        for p in 0..n_producers {
            let seq: Vec<u32> =
                received.iter().filter(|(pp, _)| *pp == p).map(|&(_, m)| m).collect();
            prop_assert_eq!(seq, (0..msgs_per).collect::<Vec<_>>());
        }
    }

    /// Semaphore permits are conserved: with capacity C, at most C
    /// holders ever overlap, and everyone eventually gets in.
    #[test]
    fn semaphore_never_oversubscribes(
        cap in 1u64..5,
        workers in 2usize..12,
        hold in 1u64..40,
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(cap);
        let active = Arc::new(Mutex::new((0i64, 0i64))); // (current, max)
        let served = Arc::new(Mutex::new(0usize));
        for w in 0..workers {
            let s = sem.clone();
            let a = active.clone();
            let done = served.clone();
            sim.spawn(format!("w{w}"), async move {
                delay(SimDuration::from_nanos((w as u64 * 7) % 13)).await.unwrap();
                s.acquire().await.unwrap();
                {
                    let mut g = a.lock();
                    g.0 += 1;
                    g.1 = g.1.max(g.0);
                }
                delay(SimDuration::from_nanos(hold)).await.unwrap();
                a.lock().0 -= 1;
                s.release();
                *done.lock() += 1;
            });
        }
        sim.run().unwrap();
        let (cur, max) = *active.lock();
        prop_assert_eq!(cur, 0);
        prop_assert!(max as u64 <= cap, "max holders {} exceeded capacity {}", max, cap);
        prop_assert_eq!(*served.lock(), workers);
    }

    /// Determinism: any program built from random delays produces the
    /// same end time twice.
    #[test]
    fn random_delay_programs_are_deterministic(
        prog in proptest::collection::vec(proptest::collection::vec(1u64..100, 1..10), 1..10)
    ) {
        let run = |prog: Vec<Vec<u64>>| {
            let sim = Sim::new();
            for (i, delays) in prog.into_iter().enumerate() {
                sim.spawn(format!("p{i}"), async move {
                    for d in delays {
                        delay(SimDuration::from_nanos(d)).await.unwrap();
                    }
                });
            }
            let r = sim.run().unwrap();
            (r.end_time, r.events)
        };
        prop_assert_eq!(run(prog.clone()), run(prog));
    }

    /// Executor determinism under the full primitive mix: an interleaved
    /// spawn/delay/channel workload produces the identical event order
    /// (observed trace) and identical RunReport fingerprint on every run.
    #[test]
    fn interleaved_spawn_delay_channel_workloads_fingerprint_identically(
        groups in proptest::collection::vec((1u64..60, 1u64..8, 1u64..6), 1..12)
    ) {
        let run = |groups: &[(u64, u64, u64)]| {
            let trace = Arc::new(Mutex::new(Vec::new()));
            let sim = Sim::new();
            let ch: Channel<u64> = Channel::new();
            for (g, &(d, msgs, kids)) in groups.iter().enumerate() {
                let tx = ch.clone();
                let tr = trace.clone();
                sim.spawn(format!("g{g}"), async move {
                    for k in 0..kids {
                        let tx = tx.clone();
                        let tr = tr.clone();
                        spawn(format!("g{g}k{k}"), async move {
                            delay(SimDuration::from_nanos(d * (k + 1))).await.unwrap();
                            for m in 0..msgs {
                                tx.send(g as u64 * 1000 + k * 100 + m);
                                delay(SimDuration::from_nanos(d % 7 + 1)).await.unwrap();
                            }
                            tr.lock().push((ompss_sim::now().as_nanos(), g as u64, k));
                        });
                    }
                    delay(SimDuration::from_nanos(d)).await.unwrap();
                });
            }
            let total: u64 = groups.iter().map(|&(_, m, k)| m * k).sum();
            let rx = ch.clone();
            let tr = trace.clone();
            sim.spawn("drain", async move {
                for _ in 0..total {
                    let v = rx.recv().await.unwrap();
                    tr.lock().push((ompss_sim::now().as_nanos(), u64::MAX, v));
                }
            });
            let r = sim.run().unwrap();
            let t = trace.lock().clone();
            (t, (r.end_time.as_nanos(), r.events, r.clock_advances, r.processes as u64))
        };
        let (trace_a, fp_a) = run(&groups);
        let (trace_b, fp_b) = run(&groups);
        prop_assert_eq!(trace_a, trace_b, "event order diverged between identical runs");
        prop_assert_eq!(fp_a, fp_b, "RunReport fingerprint diverged between identical runs");
    }
}

// Epoch edge cases: deterministic regression tests for the wake-epoch
// machinery the model checker's validation mode polices.

/// A superseded deadline event still in the heap when the run aborts
/// must stay dead: teardown bumps every epoch and polls directly, so
/// the stale event can neither resume the waiter a second time nor
/// displace the abort as the run's outcome.
#[test]
fn stale_wake_is_inert_after_abort_run() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let resumed = Arc::new(AtomicUsize::new(0));
    let sim = Sim::new();
    let sig = ompss_sim::Signal::new();
    let sig2 = sig.clone();
    let r = resumed.clone();
    sim.spawn("waiter", async move {
        // Deadline event at t=100; the set at t=10 supersedes it.
        let got = sig2.wait_timeout(SimDuration::from_nanos(100)).await?;
        assert!(got, "set arrives before the deadline");
        r.fetch_add(1, Ordering::Relaxed);
        // Still parked at t=100 (stale event's instant) and at t=20
        // (abort instant): any spurious resume would err the delay.
        delay(SimDuration::from_nanos(500)).await?;
        r.fetch_add(1, Ordering::Relaxed);
        Ok(())
    });
    sim.spawn("setter", async move {
        delay(SimDuration::from_nanos(10)).await?;
        sig.set();
        Ok(())
    });
    sim.spawn("aborter", async move {
        delay(SimDuration::from_nanos(20)).await?;
        Err(ompss_sim::abort_run(ompss_sim::RunError::Exhausted {
            what: "test abort".to_string(),
            attempts: 1,
        }))
    });
    match sim.run() {
        Err(ompss_sim::RunError::Exhausted { what, attempts: 1 }) => {
            assert_eq!(what, "test abort");
        }
        other => panic!("abort must be the run's outcome, got {other:?}"),
    }
    assert_eq!(resumed.load(Ordering::Relaxed), 1, "waiter resumed exactly once (the set)");
}

/// Two same-instant wakes for one parked process coalesce into one
/// heap event — and the counter records exactly that one coalescing,
/// no more (delays and spawns never coalesce: each targets a fresh
/// epoch or a distinct pid). A semaphore's head waiter stays
/// registered until it polls, so two releases at one instant both
/// wake it: the second wake is the coalesced one.
#[test]
fn same_instant_double_wake_coalesces_exactly_once() {
    let sim = Sim::new();
    let sem = Semaphore::new(0);
    let s = sem.clone();
    sim.spawn("waiter", async move { s.acquire().await });
    for i in 0..2u64 {
        let s = sem.clone();
        sim.spawn(("releaser", i), async move {
            delay(SimDuration::from_nanos(10)).await?;
            s.release();
            Ok(())
        });
    }
    let rep = sim.run().unwrap();
    assert_eq!(
        rep.wakes_coalesced, 1,
        "two releases at one instant are one event plus one coalesced wake"
    );
}

/// Daemons are torn down only after the last non-daemon event: every
/// worker record precedes every daemon-shutdown record, and teardown
/// does not advance the virtual clock.
#[test]
fn daemon_teardown_follows_the_last_worker_event() {
    let log: Arc<Mutex<Vec<(u64, &'static str)>>> = Arc::new(Mutex::new(Vec::new()));
    let sim = Sim::new();
    let ch: Channel<u64> = Channel::new();
    for i in 0..2u64 {
        let l = log.clone();
        let rx = ch.clone();
        sim.process(("daemon", i)).daemon().spawn(async move {
            loop {
                match rx.recv().await {
                    Ok(_) => {}
                    Err(e) => {
                        l.lock().push((ompss_sim::now().as_nanos(), "daemon-shutdown"));
                        return Err(e);
                    }
                }
            }
        });
    }
    let l = log.clone();
    let tx = ch.clone();
    sim.spawn("worker", async move {
        delay(SimDuration::from_nanos(50)).await?;
        tx.send(7);
        l.lock().push((ompss_sim::now().as_nanos(), "worker-done"));
        Ok(())
    });
    let rep = sim.run().unwrap();
    let log = log.lock().clone();
    let worker_done = log.iter().position(|&(_, what)| what == "worker-done").expect("worker ran");
    let shutdowns: Vec<usize> = log
        .iter()
        .enumerate()
        .filter(|(_, &(_, what))| what == "daemon-shutdown")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(shutdowns.len(), 2, "both daemons observed shutdown: {log:?}");
    assert!(shutdowns.iter().all(|&s| s > worker_done), "teardown after workers: {log:?}");
    for &(t, what) in log.iter() {
        if what == "daemon-shutdown" {
            assert_eq!(t, rep.end_time.as_nanos(), "teardown must not advance the clock");
        }
    }
    assert_eq!(rep.end_time.as_nanos(), 50);
}
