//! Property tests of the DES primitives: conservation and fairness
//! invariants under randomized schedules.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use ompss_sim::{Channel, Semaphore, Sim, SimDuration};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever interleaving the delays force, every message sent is
    /// received exactly once and per-producer FIFO order is preserved.
    #[test]
    fn channel_conserves_messages_with_per_producer_fifo(
        delays in proptest::collection::vec((0u64..50, 0u64..50), 1..20)
    ) {
        let sim = Sim::new();
        let ch: Channel<(usize, u32)> = Channel::new();
        let n_producers = delays.len();
        let msgs_per = 5u32;
        for (p, (d0, d1)) in delays.clone().into_iter().enumerate() {
            let tx = ch.clone();
            sim.spawn(format!("producer{p}"), move |ctx| {
                for m in 0..msgs_per {
                    ctx.delay(SimDuration::from_nanos(d0 + (m as u64 * d1) % 17)).unwrap();
                    tx.send(&ctx, (p, m));
                }
            });
        }
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = got.clone();
        let rx = ch.clone();
        sim.spawn_daemon("consumer", move |ctx| {
            while let Ok(v) = rx.recv(&ctx) {
                g.lock().push(v);
            }
        });
        sim.run().unwrap();
        let received = got.lock().clone();
        prop_assert_eq!(received.len(), n_producers * msgs_per as usize);
        // Per-producer FIFO.
        for p in 0..n_producers {
            let seq: Vec<u32> =
                received.iter().filter(|(pp, _)| *pp == p).map(|&(_, m)| m).collect();
            prop_assert_eq!(seq, (0..msgs_per).collect::<Vec<_>>());
        }
    }

    /// Semaphore permits are conserved: with capacity C, at most C
    /// holders ever overlap, and everyone eventually gets in.
    #[test]
    fn semaphore_never_oversubscribes(
        cap in 1u64..5,
        workers in 2usize..12,
        hold in 1u64..40,
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(cap);
        let active = Arc::new(Mutex::new((0i64, 0i64))); // (current, max)
        let served = Arc::new(Mutex::new(0usize));
        for w in 0..workers {
            let s = sem.clone();
            let a = active.clone();
            let done = served.clone();
            sim.spawn(format!("w{w}"), move |ctx| {
                ctx.delay(SimDuration::from_nanos((w as u64 * 7) % 13)).unwrap();
                s.acquire(&ctx).unwrap();
                {
                    let mut g = a.lock();
                    g.0 += 1;
                    g.1 = g.1.max(g.0);
                }
                ctx.delay(SimDuration::from_nanos(hold)).unwrap();
                a.lock().0 -= 1;
                s.release(&ctx);
                *done.lock() += 1;
            });
        }
        sim.run().unwrap();
        let (cur, max) = *active.lock();
        prop_assert_eq!(cur, 0);
        prop_assert!(max as u64 <= cap, "max holders {} exceeded capacity {}", max, cap);
        prop_assert_eq!(*served.lock(), workers);
    }

    /// Determinism: any program built from random delays produces the
    /// same end time twice.
    #[test]
    fn random_delay_programs_are_deterministic(
        prog in proptest::collection::vec(proptest::collection::vec(1u64..100, 1..10), 1..10)
    ) {
        let run = |prog: Vec<Vec<u64>>| {
            let sim = Sim::new();
            for (i, delays) in prog.into_iter().enumerate() {
                sim.spawn(format!("p{i}"), move |ctx| {
                    for d in delays {
                        ctx.delay(SimDuration::from_nanos(d)).unwrap();
                    }
                });
            }
            let r = sim.run().unwrap();
            (r.end_time, r.events)
        };
        prop_assert_eq!(run(prog.clone()), run(prog));
    }
}
