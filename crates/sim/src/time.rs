//! Virtual time for the discrete-event simulation.
//!
//! Time is kept as an integer number of **nanoseconds** so that event
//! ordering is exact and runs are bit-reproducible. One nanosecond of
//! resolution is ample for modelling PCIe transfers (microseconds) and
//! kernels (milliseconds); `u64` nanoseconds covers ~584 years of
//! simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the start of the simulation.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the simulation.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking so that defensive metric code cannot crash a run.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero — cost
    /// models occasionally produce `-0.0` or tiny negatives from float
    /// error and a simulation must never move backwards in time.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this span.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds in this span.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// True if the span is empty.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime(10) + SimDuration::from_nanos(5);
        assert_eq!(t, SimTime(15));
    }

    #[test]
    fn subtract_times_gives_duration() {
        assert_eq!(SimTime(100) - SimTime(40), SimDuration(60));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5e-9), SimDuration(2));
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration(1_000_000));
    }

    #[test]
    fn from_secs_f64_clamps_pathological_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_never_underflows() {
        assert_eq!(SimTime(5).saturating_since(SimTime(9)), SimDuration::ZERO);
        assert_eq!(SimTime(9).saturating_since(SimTime(5)), SimDuration(4));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration(999).to_string(), "999ns");
        assert_eq!(SimDuration(1_500).to_string(), "1.50us");
        assert_eq!(SimDuration(2_500_000).to_string(), "2.50ms");
        assert_eq!(SimDuration(3_000_000_000).to_string(), "3.000s");
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        let d = SimDuration::from_secs_f64(0.25);
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_on_durations() {
        let a = SimDuration(10);
        let b = SimDuration(4);
        assert_eq!(a + b, SimDuration(14));
        assert_eq!(a - b, SimDuration(6));
        assert_eq!(a * 3, SimDuration(30));
        assert_eq!(a / 2, SimDuration(5));
        let total: SimDuration = [a, b].into_iter().sum();
        assert_eq!(total, SimDuration(14));
    }
}
