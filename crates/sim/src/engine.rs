//! The discrete-event simulation kernel.
//!
//! # Model
//!
//! A simulation is a set of *processes* — stackless `async` tasks, one
//! heap object each — polled by a single-threaded executor over a
//! virtual clock. The kernel pops resume events in `(time, sequence)`
//! order and polls the matching process's future; while a process
//! executes Rust code between awaits, virtual time stands still —
//! computation is free unless explicitly charged with [`delay`].
//! Because exactly one future runs at any instant, the whole simulation
//! is sequential and **deterministic**: a given program always produces
//! the same schedule, the same byte counts and the same makespan. No
//! OS threads, no stacks, no handshakes — a thousand-node cluster's
//! worth of live processes is just a vector of boxed futures. The
//! vector is an *arena*: a slot whose future completed cleanly is
//! recycled by the next spawn (its epoch sequence continues, so events
//! aimed at the dead incarnation stay stale), which keeps spawn-heavy
//! runs — millions of short-lived transfer/pump processes — at a
//! footprint proportional to the number *live*, not the number ever
//! spawned. Panicked slots are never recycled.
//!
//! Processes interact with virtual time through free functions that
//! resolve the running task from executor state: [`delay`] advances the
//! clock, [`now`]/[`pid`] read it, and the blocking primitives in
//! [`crate::queue`], [`crate::sync`] return futures that park the
//! process until another process wakes it.
//!
//! # Wakeup correctness
//!
//! Every poll bumps the process's *epoch*; every scheduled resume event
//! carries the epoch it was aimed at. A resume whose epoch is stale
//! (the process has run since it was scheduled) is skipped, so spurious
//! or duplicate wakeups can never cut a `delay` short or corrupt a
//! primitive's wait protocol. Dropping a process's future marks it
//! finished, so a timer pending for it at drop time pops stale and
//! never fires.
//!
//! # Shutdown
//!
//! Processes spawned as daemons (service loops: workers, device
//! managers, message dispatchers) are expected to block forever. When
//! the event queue drains and only daemons remain blocked, the kernel
//! flips the shutdown flag and polls them one last time; every blocking
//! future then resolves to [`SimError::Shutdown`] and the daemon's
//! `async` body unwinds through its `?`s. If a *non-daemon* process is
//! still blocked when the queue drains, that is a deadlock in the
//! modelled system and [`Sim::run`] reports it.
//!
//! # Host fast paths
//!
//! An activation costs one future poll (no context switch at all), and
//! the kernel avoids even the event-heap round trip wherever the
//! outcome is already decided (see DESIGN.md §7): a `delay` whose
//! wakeup precedes every queued event completes inline on its first
//! poll, a wakeup scheduled behind an earlier live wakeup for the same
//! process is never enqueued (it could only pop stale), and the event
//! heap is compacted when superseded entries outnumber live ones. None
//! of this is observable in virtual time — event and clock-advance
//! counts are identical to the literal kernel — and setting
//! `OMPSS_SIM_NO_FASTPATH=1` disables the delay/wakeup-dedup shortcuts
//! for A/B determinism checks.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::time::Instant;

use parking_lot::Mutex;

use crate::error::{ProcState, RunError, RunReport, SimError, SimResult};
use crate::time::{SimDuration, SimTime};

/// Identifier of a simulation process.
pub type Pid = usize;

/// A process name, stored without forcing an allocation on the spawn
/// hot path.
///
/// Spawn-heavy runs used to pay a `format!` + heap allocation per
/// process for a name that is only rendered on cold paths (deadlock
/// reports, panic reports). `ProcName` keeps the common cases free:
/// literals are borrowed, and the ubiquitous `"{prefix}{index}"` shape
/// is stored as its parts and rendered lazily via `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcName {
    /// A borrowed literal — zero allocation.
    Static(&'static str),
    /// An owned, pre-rendered string.
    Owned(Box<str>),
    /// `"{0}{1}"`, rendered only when displayed.
    Indexed(&'static str, u64),
}

impl fmt::Display for ProcName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcName::Static(s) => f.write_str(s),
            ProcName::Owned(s) => f.write_str(s),
            ProcName::Indexed(prefix, i) => write!(f, "{prefix}{i}"),
        }
    }
}

impl From<&'static str> for ProcName {
    fn from(s: &'static str) -> Self {
        ProcName::Static(s)
    }
}

impl From<String> for ProcName {
    fn from(s: String) -> Self {
        ProcName::Owned(s.into_boxed_str())
    }
}

impl From<(&'static str, u64)> for ProcName {
    fn from((prefix, i): (&'static str, u64)) -> Self {
        ProcName::Indexed(prefix, i)
    }
}

/// A process body, type-erased: the `async` block the user spawned,
/// with its output normalised to `SimResult<()>` (see [`ProcessExit`]).
type TaskFut = Pin<Box<dyn Future<Output = SimResult<()>> + Send>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Has a resume event in flight (initial spawn or timed wakeup).
    Ready,
    /// Currently being polled by the executor.
    Running,
    /// Parked in a blocking primitive, waiting for an external wake.
    Blocked,
    /// Future completed (or was dropped).
    Finished,
}

struct ProcSlot {
    name: ProcName,
    phase: Phase,
    /// Bumped every time the kernel polls this process; used to
    /// invalidate stale wakeup events.
    epoch: u64,
    daemon: bool,
    /// `(time, epoch)` of the earliest live resume event queued for this
    /// process. A later wakeup aimed at the same epoch could only ever
    /// pop stale (the earlier one fires first and bumps the epoch), so
    /// it is not enqueued at all — this is the per-process reuse slot
    /// that keeps redundant wakes out of the heap.
    pending_wake: Option<(SimTime, u64)>,
}

/// One entry in the event queue: resume `pid` at `time`, provided its
/// epoch still equals `epoch`. `seq` breaks ties deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: SimTime,
    seq: u64,
    pid: Pid,
    epoch: u64,
}

// ---------------------------------------------------------------------------
// Model-checking hooks: tie-break control + dispatch footprints
// ---------------------------------------------------------------------------

/// What one dispatched step did, as far as commutativity analysis
/// cares. Two steps whose footprints are disjoint (no shared process,
/// no shared resource) can be reordered without changing the reachable
/// state — the independence relation behind the model checker's
/// partial-order reduction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepFootprint {
    /// The process that was polled.
    pub pid: Pid,
    /// Processes it scheduled wakes for (including coalesced wakes).
    pub wakes: Vec<Pid>,
    /// Processes it spawned.
    pub spawns: Vec<Pid>,
    /// Ids of primitives it touched (channels, semaphores, signals,
    /// latches, bells, coherence regions) — see [`mc_touch`].
    pub resources: Vec<u64>,
}

impl StepFootprint {
    /// True when the two steps commute: they involve disjoint process
    /// sets and disjoint resource sets.
    pub fn independent(&self, other: &StepFootprint) -> bool {
        fn pids(s: &StepFootprint) -> impl Iterator<Item = Pid> + '_ {
            std::iter::once(s.pid).chain(s.wakes.iter().copied()).chain(s.spawns.iter().copied())
        }
        if pids(self).any(|p| pids(other).any(|q| p == q)) {
            return false;
        }
        !self.resources.iter().any(|r| other.resources.contains(r))
    }
}

/// Controls the executor's tie-break between co-enabled events.
///
/// Whenever two or more live events pop at the same minimal `SimTime`,
/// a controller installed via [`install_tie_break`] picks which process
/// runs next (the default executor always picks the lowest sequence
/// number — spawn/schedule order). After each dispatched poll the
/// controller also observes the step's [`StepFootprint`], which is what
/// the model checker's independence oracle is built from.
pub trait TieBreak: Send {
    /// Pick one of `candidates` (ordered by sequence number, so index 0
    /// is the default schedule's choice) to dispatch at time `now`.
    /// Returns an index into `candidates`.
    fn choose(&mut self, now: SimTime, candidates: &[Pid]) -> usize;

    /// Observe what the just-dispatched step did.
    fn observe(&mut self, step: StepFootprint);
}

/// Tie-break installation consumed by the next [`Sim::new`] on this
/// thread (loom-style: the checker arms the thread, then calls into
/// code that constructs the simulation internally).
struct McInstall {
    controller: Arc<Mutex<dyn TieBreak>>,
    validate: bool,
}

/// Per-sim model-checking state.
struct McState {
    controller: Arc<Mutex<dyn TieBreak>>,
    /// Check kernel invariants on every dispatch (stale events must be
    /// dropped; a valid pop must match the tracked pending wake).
    validate: bool,
}

thread_local! {
    static MC_INSTALL: RefCell<Option<McInstall>> = const { RefCell::new(None) };
    /// Resource-id well for [`mc_resource_id`]. Thread-local and reset
    /// by [`install_tie_break`] so ids are stable across replays of the
    /// same single-threaded program.
    static RESOURCE_IDS: Cell<u64> = const { Cell::new(0) };
    /// Fast flag: the process currently being polled on this thread
    /// belongs to a sim with a controller installed, so primitives
    /// should report resource touches.
    static MC_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Arm the **next** [`Sim::new`] on this thread with a tie-break
/// controller. Also resets the resource-id counter so primitive ids
/// are identical across replays of the same program. `validate` turns
/// on per-dispatch kernel invariant checking (surfaced as
/// [`RunError::InvariantViolation`]).
pub fn install_tie_break(controller: Arc<Mutex<dyn TieBreak>>, validate: bool) {
    RESOURCE_IDS.with(|c| c.set(0));
    MC_INSTALL.with(|slot| *slot.borrow_mut() = Some(McInstall { controller, validate }));
}

/// Allocate a stable id for a dependence-relevant resource (channel,
/// semaphore, coherence region, ...). Deterministic for a
/// deterministic program: the counter is thread-local and reset by
/// [`install_tie_break`], so the n-th primitive constructed is always
/// resource n across replays.
pub fn mc_resource_id() -> u64 {
    RESOURCE_IDS.with(|c| {
        let id = c.get() + 1;
        c.set(id);
        id
    })
}

/// Report that the running process touched resource `id`. No-op unless
/// the current poll belongs to a sim with a tie-break controller
/// installed, so the cost outside model checking is one thread-local
/// flag read.
pub fn mc_touch(id: u64) {
    if !MC_ACTIVE.with(|f| f.get()) {
        return;
    }
    CURRENT.with(|stack| {
        if let Some(top) = stack.borrow().last() {
            if top.shared.mc.is_some() {
                if let Some(step) = top.shared.kernel.lock().step.as_mut() {
                    step.resources.push(id);
                }
            }
        }
    });
}

pub(crate) struct Kernel {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Event>>,
    procs: Vec<ProcSlot>,
    /// Total processes ever spawned. With slot reuse `procs.len()` is
    /// only the high-water mark of *live* processes; this counter is
    /// what [`RunReport::processes`] reports.
    spawned: u64,
    /// Arena free list: pids whose futures completed cleanly, ready to
    /// host a new process. The slot's epoch is never reset, so events
    /// aimed at a previous incarnation stay stale forever. Panicked
    /// slots are deliberately not recycled — their name/panic records
    /// must keep pointing at the process that died in them.
    free_slots: Vec<Pid>,
    shutdown: bool,
    events_processed: u64,
    clock_advances: u64,
    /// Events still in the heap that are already known stale: they were
    /// superseded by an earlier wake for the same `(pid, epoch)`. When
    /// they outnumber live events the heap is compacted instead of
    /// letting cancelled wakeups accumulate.
    stale_events: u64,
    /// Wakeups never enqueued because an earlier live wake for the same
    /// `(pid, epoch)` already guaranteed them stale.
    wakes_coalesced: u64,
    panics: Vec<(String, String)>,
    /// First fatal error raised via [`abort_run`]; ends the run at the
    /// next kernel step and becomes [`Sim::run`]'s error.
    fatal: Option<RunError>,
    /// Footprint of the step currently being executed (set at dispatch,
    /// handed to the controller after the poll). `None` unless a
    /// tie-break controller is installed.
    step: Option<StepFootprint>,
    /// Kernel invariant violations caught in validation mode. Bounded;
    /// the first one becomes [`RunError::InvariantViolation`].
    violations: Vec<String>,
}

impl Kernel {
    /// Drop provably-stale events once they dominate the heap. Amortised
    /// O(1) per push: each compaction halves the heap at least.
    fn maybe_compact(&mut self) {
        if self.stale_events >= 64 && self.stale_events * 2 > self.queue.len() as u64 {
            let procs = &self.procs;
            self.queue.retain(|Reverse(ev)| {
                let slot = &procs[ev.pid];
                slot.phase != Phase::Finished && slot.epoch == ev.epoch
            });
            self.stale_events = 0;
        }
    }
}

/// State shared between the kernel and every primitive.
pub(crate) struct Shared {
    pub(crate) kernel: Mutex<Kernel>,
    /// The process futures, indexed by pid. Kept outside the kernel
    /// mutex so a future being polled can lock the kernel (delay,
    /// spawn, wake scheduling) without deadlocking; the executor takes
    /// a future out to poll it and puts it back if it stays pending.
    tasks: Mutex<Vec<Option<TaskFut>>>,
    /// Mirror of `Kernel::now` so [`now`] (called on every primitive
    /// operation) never takes the kernel lock. Only the executor writes
    /// it, at dispatch time.
    now_ns: AtomicU64,
    /// Mirror of `Kernel::shutdown`, for lock-free checks in futures.
    shutdown_flag: AtomicBool,
    /// Host fast paths enabled (default). `OMPSS_SIM_NO_FASTPATH=1`
    /// restores the literal kernel for determinism A/B tests.
    fast_paths: bool,
    /// Model-checking state, consumed from [`install_tie_break`]'s
    /// thread-local by [`Sim::new`]. `None` in ordinary runs.
    mc: Option<McState>,
}

impl Shared {
    /// Schedule a wakeup for `pid` at absolute time `at`, targeted at the
    /// process's *current* epoch. Call while the process is blocked (or
    /// about to block); a stale epoch at pop time makes the event a no-op.
    pub(crate) fn schedule_wake_current_epoch(&self, pid: Pid, at: SimTime) {
        let mut k = self.kernel.lock();
        if let Some(step) = k.step.as_mut() {
            // Record the wake whether or not it is coalesced below: the
            // independence oracle cares that this step *interacts* with
            // `pid`, not how the heap stores the event.
            step.wakes.push(pid);
        }
        let epoch = k.procs[pid].epoch;
        if self.fast_paths {
            match k.procs[pid].pending_wake {
                // An earlier (or simultaneous, hence lower-seq) live wake
                // already resumes the process and bumps its epoch; this
                // one could only pop stale. Skip the heap entirely.
                Some((t, e)) if e == epoch && t <= at => {
                    k.wakes_coalesced += 1;
                    return;
                }
                // The new wake fires first and strands the old entry.
                Some((_, e)) if e == epoch => k.stale_events += 1,
                _ => {}
            }
            k.procs[pid].pending_wake = Some((at, epoch));
        }
        let seq = k.seq;
        k.seq += 1;
        k.queue.push(Reverse(Event { time: at, seq, pid, epoch }));
        if self.fast_paths {
            k.maybe_compact();
        }
    }

    /// Pop and account the next valid event; returns the process to
    /// poll, or `None` when the run is over (queue drained, fatal
    /// abort, or shutdown).
    fn dispatch_locked(&self, k: &mut Kernel) -> Option<Pid> {
        if self.mc.is_some() {
            return self.dispatch_mc_locked(k);
        }
        loop {
            if k.fatal.is_some() || k.shutdown {
                return None;
            }
            match k.queue.pop() {
                None => return None,
                Some(Reverse(ev)) => {
                    let slot = &mut k.procs[ev.pid];
                    let stale = slot.phase == Phase::Finished || slot.epoch != ev.epoch;
                    if stale && !crate::defects::armed("epoch") {
                        // Stale wakeup. If it was superseded it was
                        // counted; settle the books.
                        k.stale_events = k.stale_events.saturating_sub(1);
                        continue;
                    }
                    if stale && slot.phase == Phase::Finished {
                        // Even the seeded epoch defect cannot resume a
                        // dropped future.
                        continue;
                    }
                    debug_assert!(
                        slot.phase == Phase::Ready || slot.phase == Phase::Blocked,
                        "resuming a process in phase {:?}",
                        slot.phase
                    );
                    slot.phase = Phase::Running;
                    slot.epoch += 1;
                    // A valid pop is necessarily the tracked earliest
                    // live wake for this process.
                    slot.pending_wake = None;
                    if ev.time > k.now {
                        k.clock_advances += 1;
                    }
                    k.now = ev.time;
                    k.events_processed += 1;
                    self.now_ns.store(ev.time.as_nanos(), Ordering::Release);
                    return Some(ev.pid);
                }
            }
        }
    }

    /// Dispatch with a tie-break controller installed: every set of
    /// live events co-enabled at the minimal queued time becomes an
    /// explicit choice point the controller resolves, instead of the
    /// sequence counter deciding. Unchosen events go back on the heap
    /// with their original sequence numbers, so sibling order at the
    /// next choice point is stable.
    fn dispatch_mc_locked(&self, k: &mut Kernel) -> Option<Pid> {
        let mc = self.mc.as_ref().expect("mc dispatch without a controller");
        loop {
            if k.fatal.is_some() || k.shutdown {
                return None;
            }
            let Reverse(first) = k.queue.pop()?;
            let t = first.time;
            // Pop everything co-enabled at `t`; drop stale events and
            // keep at most one live event per process (a second could
            // only pop stale once the first dispatches).
            let mut live: Vec<Event> = Vec::new();
            let mut requeue: Vec<Event> = Vec::new();
            let mut next = Some(first);
            loop {
                let e = match next.take() {
                    Some(e) => e,
                    None => match k.queue.peek() {
                        Some(Reverse(head)) if head.time == t => {
                            let Reverse(head) = k.queue.pop().expect("peeked event vanished");
                            head
                        }
                        _ => break,
                    },
                };
                let (phase, slot_epoch) = {
                    let s = &k.procs[e.pid];
                    (s.phase, s.epoch)
                };
                let stale = phase == Phase::Finished || slot_epoch != e.epoch;
                if stale && !crate::defects::armed("epoch") {
                    k.stale_events = k.stale_events.saturating_sub(1);
                    continue;
                }
                if stale && phase == Phase::Finished {
                    continue;
                }
                if stale {
                    // The seeded epoch defect let a stale event through:
                    // exactly what validation mode must catch.
                    if mc.validate && k.violations.len() < 16 {
                        k.violations.push(format!(
                            "stale event reached dispatch: pid {} event epoch {} vs slot \
                             epoch {slot_epoch} at t={}ns",
                            e.pid,
                            e.epoch,
                            t.as_nanos()
                        ));
                    }
                }
                if live.iter().any(|l| l.pid == e.pid) {
                    // Reachable only with fast paths off: leave it
                    // queued; it pops stale after the first dispatches.
                    requeue.push(e);
                    continue;
                }
                live.push(e);
            }
            for e in requeue {
                k.queue.push(Reverse(e));
            }
            if live.is_empty() {
                continue;
            }
            let chosen = if live.len() == 1 {
                0
            } else {
                let pids: Vec<Pid> = live.iter().map(|e| e.pid).collect();
                let c = mc.controller.lock().choose(t, &pids);
                assert!(
                    c < live.len(),
                    "TieBreak::choose returned {c} for {} candidates",
                    live.len()
                );
                c
            };
            for (i, e) in live.iter().enumerate() {
                if i != chosen {
                    k.queue.push(Reverse(*e));
                }
            }
            let ev = live[chosen];
            if mc.validate && self.fast_paths {
                let (slot_epoch, pending) = {
                    let s = &k.procs[ev.pid];
                    (s.epoch, s.pending_wake)
                };
                if slot_epoch == ev.epoch
                    && pending != Some((ev.time, ev.epoch))
                    && k.violations.len() < 16
                {
                    k.violations.push(format!(
                        "valid pop does not match tracked pending wake: pid {} expected \
                         {:?}, tracked {pending:?}",
                        ev.pid,
                        (ev.time.as_nanos(), ev.epoch)
                    ));
                }
            }
            {
                let slot = &mut k.procs[ev.pid];
                slot.phase = Phase::Running;
                slot.epoch += 1;
                slot.pending_wake = None;
            }
            if ev.time > k.now {
                k.clock_advances += 1;
            }
            k.now = ev.time;
            k.events_processed += 1;
            self.now_ns.store(ev.time.as_nanos(), Ordering::Release);
            k.step = Some(StepFootprint { pid: ev.pid, ..Default::default() });
            return Some(ev.pid);
        }
    }

    /// Hand the finished step's footprint to the controller (set only
    /// while a tie-break controller is installed).
    fn flush_step(&self) {
        let Some(mc) = self.mc.as_ref() else {
            return;
        };
        let step = self.kernel.lock().step.take();
        if let Some(step) = step {
            mc.controller.lock().observe(step);
        }
    }

    pub(crate) fn now(&self) -> SimTime {
        SimTime(self.now_ns.load(Ordering::Acquire))
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown_flag.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// Current-task context
// ---------------------------------------------------------------------------

/// The executor publishes the task being polled here, so [`now`],
/// [`delay`], [`spawn`] and the primitives work inside any `async`
/// process body without threading a handle through every call. A stack,
/// so a process may construct and run a nested [`Sim`] synchronously.
struct TaskCtx {
    shared: Arc<Shared>,
    pid: Pid,
}

thread_local! {
    static CURRENT: RefCell<Vec<TaskCtx>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with the current task's shared state and pid. Panics when
/// called outside a simulation process.
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Shared>, Pid) -> R) -> R {
    CURRENT.with(|stack| {
        let stack = stack.borrow();
        let top = stack
            .last()
            .expect("this operation only works inside a simulation process (is a Sim running?)");
        f(&top.shared, top.pid)
    })
}

/// Like [`with_current`], but only needs the executor, not the pid.
pub(crate) fn with_current_shared<R>(f: impl FnOnce(&Arc<Shared>) -> R) -> R {
    with_current(|shared, _| f(shared))
}

/// Current virtual time. Only valid inside a simulation process.
pub fn now() -> SimTime {
    with_current_shared(|s| s.now())
}

/// The calling process's id. Only valid inside a simulation process.
pub fn pid() -> Pid {
    with_current(|_, pid| pid)
}

/// Abort the whole simulation with a structured error: the kernel stops
/// dispatching, daemons are torn down, and [`Sim::run`] returns `err`
/// (first abort wins). Returns [`SimError::Shutdown`] so the caller can
/// unwind through the ordinary `?` path:
///
/// ```ignore
/// return Err(abort_run(RunError::Exhausted { what, attempts }));
/// ```
pub fn abort_run(err: RunError) -> SimError {
    with_current_shared(|shared| {
        let mut k = shared.kernel.lock();
        if !k.shutdown && k.fatal.is_none() {
            k.fatal = Some(err);
        }
    });
    SimError::Shutdown
}

// ---------------------------------------------------------------------------
// Spawning
// ---------------------------------------------------------------------------

/// What an `async` process body may resolve to. Sealed in practice:
/// `()` for infallible bodies, `SimResult<()>` for bodies that use `?`
/// on blocking calls — [`SimError::Shutdown`] (daemon teardown) and
/// [`SimError::Closed`] (drained channel) are clean exits, not errors.
pub trait ProcessExit: Send + 'static {
    /// Normalise to the kernel's internal exit type.
    fn into_exit(self) -> SimResult<()>;
}

impl ProcessExit for () {
    fn into_exit(self) -> SimResult<()> {
        Ok(())
    }
}

impl ProcessExit for SimResult<()> {
    fn into_exit(self) -> SimResult<()> {
        self
    }
}

fn spawn_impl(shared: &Arc<Shared>, name: ProcName, daemon: bool, fut: TaskFut) -> Pid {
    let mut k = shared.kernel.lock();
    // Initial activation at the current time: a fresh slot starts at
    // epoch 0; a recycled slot continues its epoch sequence so stale
    // events from the previous incarnation can never resume this one.
    let at = k.now;
    k.spawned += 1;
    let (pid, epoch) = match k.free_slots.pop() {
        Some(pid) => {
            let slot = &mut k.procs[pid];
            debug_assert_eq!(slot.phase, Phase::Finished);
            let epoch = slot.epoch;
            slot.name = name;
            slot.phase = Phase::Ready;
            slot.daemon = daemon;
            slot.pending_wake = Some((at, epoch));
            (pid, epoch)
        }
        None => {
            let pid = k.procs.len();
            k.procs.push(ProcSlot {
                name,
                phase: Phase::Ready,
                epoch: 0,
                daemon,
                pending_wake: Some((at, 0)),
            });
            (pid, 0)
        }
    };
    if let Some(step) = k.step.as_mut() {
        step.spawns.push(pid);
    }
    let seq = k.seq;
    k.seq += 1;
    k.queue.push(Reverse(Event { time: at, seq, pid, epoch }));
    drop(k);
    let mut tasks = shared.tasks.lock();
    if pid < tasks.len() {
        debug_assert!(tasks[pid].is_none(), "reused slot still holds a future");
        tasks[pid] = Some(fut);
    } else {
        debug_assert_eq!(tasks.len(), pid);
        tasks.push(Some(fut));
    }
    pid
}

fn box_body<F>(fut: F) -> TaskFut
where
    F: Future + Send + 'static,
    F::Output: ProcessExit,
{
    Box::pin(async move { fut.await.into_exit() })
}

/// Configure-and-spawn builder for one process: the single spawn
/// surface. `spawn(name, fut)` is shorthand for
/// `process(name).spawn(fut)`; daemon-ness is the builder option:
///
/// ```ignore
/// process("worker").daemon().spawn(async move {
///     loop { handle(rx.recv().await?); }
/// });
/// ```
pub struct ProcessBuilder {
    shared: Arc<Shared>,
    name: ProcName,
    daemon: bool,
}

impl ProcessBuilder {
    /// Mark the process a daemon: a service loop that blocks forever
    /// and is torn down via [`SimError::Shutdown`] when the simulation
    /// drains. Non-daemon processes must finish on their own, or the
    /// run reports a deadlock.
    pub fn daemon(mut self) -> Self {
        self.daemon = true;
        self
    }

    /// Spawn the process with `fut` as its body, runnable at the
    /// current virtual time. Returns its pid.
    pub fn spawn<F>(self, fut: F) -> Pid
    where
        F: Future + Send + 'static,
        F::Output: ProcessExit,
    {
        spawn_impl(&self.shared, self.name, self.daemon, box_body(fut))
    }
}

/// Begin spawning a process from inside another process (builder form;
/// see [`Sim::process`] for the pre-run equivalent).
pub fn process(name: impl Into<ProcName>) -> ProcessBuilder {
    with_current_shared(|shared| ProcessBuilder {
        shared: shared.clone(),
        name: name.into(),
        daemon: false,
    })
}

/// Spawn a regular (non-daemon) child process from inside another
/// process, runnable at the current virtual time.
pub fn spawn<F>(name: impl Into<ProcName>, fut: F) -> Pid
where
    F: Future + Send + 'static,
    F::Output: ProcessExit,
{
    process(name).spawn(fut)
}

// ---------------------------------------------------------------------------
// Delay
// ---------------------------------------------------------------------------

enum DelayState {
    Init,
    Waiting,
    Done,
}

/// Future returned by [`delay`] and [`yield_now`].
pub struct Delay {
    d: SimDuration,
    state: DelayState,
}

impl Future for Delay {
    type Output = SimResult<()>;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.state {
            DelayState::Init => with_current(|shared, pid| {
                let mut k = shared.kernel.lock();
                if k.shutdown {
                    self.state = DelayState::Done;
                    return Poll::Ready(Err(SimError::Shutdown));
                }
                let at = k.now + self.d;
                if shared.fast_paths && k.fatal.is_none() {
                    let head_due = match k.queue.peek() {
                        Some(Reverse(ev)) => ev.time <= at,
                        None => false,
                    };
                    if !head_due {
                        // No queued event precedes the wakeup: parking
                        // would make the kernel pop our own event
                        // straight back. Advance the clock inline
                        // instead, with identical event accounting.
                        let now = k.now;
                        let slot = &mut k.procs[pid];
                        debug_assert_eq!(slot.phase, Phase::Running);
                        debug_assert!(
                            !matches!(slot.pending_wake, Some((_, e)) if e == slot.epoch),
                            "running process has a live wake in flight"
                        );
                        slot.epoch += 1;
                        if at > now {
                            k.clock_advances += 1;
                        }
                        k.now = at;
                        k.events_processed += 1;
                        shared.now_ns.store(at.as_nanos(), Ordering::Release);
                        self.state = DelayState::Done;
                        return Poll::Ready(Ok(()));
                    }
                }
                let seq = k.seq;
                k.seq += 1;
                let epoch = k.procs[pid].epoch;
                k.procs[pid].phase = Phase::Ready;
                if shared.fast_paths {
                    k.procs[pid].pending_wake = Some((at, epoch));
                }
                k.queue.push(Reverse(Event { time: at, seq, pid, epoch }));
                self.state = DelayState::Waiting;
                Poll::Pending
            }),
            DelayState::Waiting => {
                self.state = DelayState::Done;
                if with_current_shared(|s| s.is_shutdown()) {
                    Poll::Ready(Err(SimError::Shutdown))
                } else {
                    Poll::Ready(Ok(()))
                }
            }
            DelayState::Done => panic!("Delay polled after completion"),
        }
    }
}

/// Advance virtual time by `d`: park this process and resume it once
/// every event scheduled before `now + d` has run.
pub fn delay(d: SimDuration) -> Delay {
    Delay { d, state: DelayState::Init }
}

/// Relinquish the CPU until the next event at the same timestamp has
/// run: a deterministic yield. Useful to let same-time events
/// interleave fairly.
pub fn yield_now() -> Delay {
    delay(SimDuration::ZERO)
}

// ---------------------------------------------------------------------------
// Parking (the primitive-side future)
// ---------------------------------------------------------------------------

/// Future that repeatedly evaluates `f` — once per valid wakeup — until
/// it resolves. `f` sees the executor and the calling pid; returning
/// `None` parks the process (register in a waiter list first, schedule
/// a wake, or both). This is the poll-based translation of the old
/// `loop { check-and-register; park()?; }` protocol: each `None` is one
/// park, each re-evaluation one valid wakeup, so event accounting is
/// identical. A would-park evaluation during shutdown resolves to
/// [`SimError::Shutdown`] instead.
pub(crate) struct ParkWhile<F> {
    f: F,
}

impl<T, F> Future for ParkWhile<F>
where
    F: FnMut(&Arc<Shared>, Pid) -> Option<SimResult<T>> + Unpin,
{
    type Output = SimResult<T>;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = &mut *self;
        with_current(|shared, pid| match (me.f)(shared, pid) {
            Some(r) => Poll::Ready(r),
            None => {
                let mut k = shared.kernel.lock();
                if k.shutdown {
                    return Poll::Ready(Err(SimError::Shutdown));
                }
                k.procs[pid].phase = Phase::Blocked;
                Poll::Pending
            }
        })
    }
}

/// Build a parking future from a check-and-register closure (see
/// [`ParkWhile`]).
pub(crate) fn park_while<T, F>(f: F) -> ParkWhile<F>
where
    F: FnMut(&Arc<Shared>, Pid) -> Option<SimResult<T>> + Unpin,
{
    ParkWhile { f }
}

// ---------------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------------

/// A deterministic discrete-event simulation.
///
/// Build one, spawn a root process, and [`run`](Sim::run) it to
/// completion:
///
/// ```
/// use ompss_sim::{delay, now, Sim, SimDuration};
///
/// let sim = Sim::new();
/// sim.spawn("main", async {
///     delay(SimDuration::from_millis(3)).await.unwrap();
///     assert_eq!(now().as_nanos(), 3_000_000);
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time.as_nanos(), 3_000_000);
/// ```
pub struct Sim {
    shared: Arc<Shared>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

const NOOP_VTABLE: RawWakerVTable =
    RawWakerVTable::new(|_| RawWaker::new(std::ptr::null(), &NOOP_VTABLE), |_| {}, |_| {}, |_| {});

/// Wakes go through the event queue ([`Shared::schedule_wake_current_epoch`]),
/// never through the std waker, so the executor polls with a no-op one.
fn noop_waker() -> Waker {
    // SAFETY: all vtable functions are no-ops; the data pointer is unused.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &NOOP_VTABLE)) }
}

impl Sim {
    /// Create an empty simulation at time zero.
    pub fn new() -> Self {
        Sim {
            shared: Arc::new(Shared {
                kernel: Mutex::new(Kernel {
                    now: SimTime::ZERO,
                    seq: 0,
                    queue: BinaryHeap::new(),
                    procs: Vec::new(),
                    spawned: 0,
                    free_slots: Vec::new(),
                    shutdown: false,
                    events_processed: 0,
                    clock_advances: 0,
                    stale_events: 0,
                    wakes_coalesced: 0,
                    panics: Vec::new(),
                    fatal: None,
                    step: None,
                    violations: Vec::new(),
                }),
                tasks: Mutex::new(Vec::new()),
                now_ns: AtomicU64::new(0),
                shutdown_flag: AtomicBool::new(false),
                fast_paths: std::env::var_os("OMPSS_SIM_NO_FASTPATH").is_none_or(|v| v == "0"),
                mc: MC_INSTALL.with(|slot| {
                    slot.borrow_mut()
                        .take()
                        .map(|i| McState { controller: i.controller, validate: i.validate })
                }),
            }),
        }
    }

    /// Begin spawning a process (builder form, for daemon-ness):
    /// `sim.process("worker").daemon().spawn(async move { ... })`.
    pub fn process(&self, name: impl Into<ProcName>) -> ProcessBuilder {
        ProcessBuilder { shared: self.shared.clone(), name: name.into(), daemon: false }
    }

    /// Spawn a regular (non-daemon) process. It becomes runnable at the
    /// current virtual time. The simulation is not complete until every
    /// non-daemon process has returned.
    pub fn spawn<F>(&self, name: impl Into<ProcName>, fut: F) -> Pid
    where
        F: Future + Send + 'static,
        F::Output: ProcessExit,
    {
        self.process(name).spawn(fut)
    }

    /// Poll process `pid` once, with the current-task context published
    /// for the free functions. Returns whether the future completed.
    fn poll_process(shared: &Arc<Shared>, pid: Pid) -> bool {
        let Some(mut fut) = shared.tasks.lock()[pid].take() else {
            return true;
        };
        CURRENT.with(|s| s.borrow_mut().push(TaskCtx { shared: shared.clone(), pid }));
        let mc_was_active = MC_ACTIVE.with(|f| f.replace(shared.mc.is_some()));
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let polled = catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        let finished = match polled {
            Ok(Poll::Pending) => {
                shared.tasks.lock()[pid] = Some(fut);
                false
            }
            Ok(Poll::Ready(_exit)) => {
                // Shutdown/Closed exits are clean teardown, not failures.
                let mut k = shared.kernel.lock();
                let slot = &mut k.procs[pid];
                slot.phase = Phase::Finished;
                slot.epoch += 1;
                // Clean finishes recycle their slot. Safe even though
                // the body's destructors run below: the future is
                // already out of the task table, so a destructor-spawn
                // that wins this slot installs its own future, and the
                // epoch continuation keeps the dead incarnation's
                // events stale. No recycling during shutdown — teardown
                // enumerates slots and nothing spawns.
                if !k.shutdown {
                    k.free_slots.push(pid);
                }
                drop(k);
                // Drop the body with the task context still published,
                // so destructors may use the free functions.
                drop(fut);
                true
            }
            Err(payload) => {
                let msg = panic_message(&*payload);
                let mut k = shared.kernel.lock();
                let slot = &mut k.procs[pid];
                slot.phase = Phase::Finished;
                slot.epoch += 1;
                let name = slot.name.to_string();
                // Shutdown unwinds may legitimately panic through user
                // code that unwraps a SimResult; only record panics that
                // happen while the simulation is live.
                if !k.shutdown {
                    k.panics.push((name, msg));
                }
                drop(k);
                // The future may be mid-poll-poisoned; a panicking drop
                // must not take the executor down with it.
                let _ = catch_unwind(AssertUnwindSafe(move || drop(fut)));
                true
            }
        };
        MC_ACTIVE.with(|f| f.set(mc_was_active));
        CURRENT.with(|s| {
            s.borrow_mut().pop();
        });
        finished
    }

    /// Run the simulation until the event queue drains, then tear down
    /// daemons.
    ///
    /// Returns an error if the modelled system deadlocked (a non-daemon
    /// process was still blocked at drain time) or any process panicked.
    pub fn run(self) -> Result<RunReport, RunError> {
        let host_start = Instant::now();
        let shared = &self.shared;
        loop {
            let pid = {
                let mut k = shared.kernel.lock();
                shared.dispatch_locked(&mut k)
            };
            match pid {
                Some(pid) => {
                    Self::poll_process(shared, pid);
                    shared.flush_step();
                }
                None => break,
            }
        }

        // Queue drained. Non-daemon processes still alive are deadlocked.
        let deadlocked: Vec<ProcState> = {
            let k = shared.kernel.lock();
            k.procs
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.daemon && p.phase != Phase::Finished)
                .map(|(pid, p)| ProcState {
                    pid,
                    name: p.name.to_string(),
                    phase: match p.phase {
                        Phase::Blocked => "blocked",
                        _ => "ready",
                    },
                })
                .collect()
        };

        // Tear down daemons (and, on deadlock, the stuck processes too).
        // Blocking futures observe the shutdown flag and resolve to
        // `Err(Shutdown)`, so one poll unwinds each body through its
        // `?`s — a body that keeps blocking is re-polled until the guard
        // trips.
        shared.kernel.lock().shutdown = true;
        shared.shutdown_flag.store(true, Ordering::Release);
        let mut guard = 0usize;
        loop {
            let pending: Vec<Pid> = {
                let mut k = shared.kernel.lock();
                let mut v = Vec::new();
                for (pid, slot) in k.procs.iter_mut().enumerate() {
                    if slot.phase != Phase::Finished {
                        slot.phase = Phase::Running;
                        slot.epoch += 1;
                        v.push(pid);
                    }
                }
                v
            };
            if pending.is_empty() {
                break;
            }
            for pid in pending {
                Self::poll_process(shared, pid);
            }
            guard += 1;
            assert!(guard < 1000, "a process is ignoring SimError::Shutdown");
        }

        let mut k = shared.kernel.lock();
        // An abort takes precedence: processes blocked at that instant
        // (and panics from their forced unwinds) are consequences of
        // stopping early, not independent failures.
        if let Some(fatal) = k.fatal.take() {
            return Err(fatal);
        }
        // A kernel invariant break is the root cause of whatever
        // followed it (spurious wakes can cascade into panics or
        // deadlocks), so it outranks both.
        if let Some(what) = k.violations.first() {
            return Err(RunError::InvariantViolation { what: what.clone() });
        }
        if let Some((name, msg)) = k.panics.first() {
            return Err(RunError::ProcessPanic(name.clone(), msg.clone()));
        }
        if !deadlocked.is_empty() {
            return Err(RunError::Deadlock { blocked: deadlocked });
        }
        Ok(RunReport {
            end_time: k.now,
            events: k.events_processed,
            clock_advances: k.clock_advances,
            processes: k.spawned as usize,
            host_ns: host_start.elapsed().as_nanos() as u64,
            wakes_coalesced: k.wakes_coalesced,
        })
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Park forever (test helper): the old engine's bare `ctx.park()`.
    async fn park_forever() -> SimResult<()> {
        park_while(|_, _| None::<SimResult<()>>).await
    }

    #[test]
    fn empty_sim_completes() {
        let report = Sim::new().run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.events, 0);
    }

    #[test]
    fn single_process_delays_advance_clock() {
        let sim = Sim::new();
        sim.spawn("p", async {
            assert_eq!(now(), SimTime::ZERO);
            delay(SimDuration::from_nanos(10)).await.unwrap();
            assert_eq!(now().as_nanos(), 10);
            delay(SimDuration::from_nanos(5)).await.unwrap();
            assert_eq!(now().as_nanos(), 15);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 15);
    }

    #[test]
    fn events_fire_in_time_order_across_processes() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sim = Sim::new();
        for (name, d) in [("a", 30u64), ("b", 10), ("c", 20)] {
            let log = log.clone();
            sim.spawn(name, async move {
                delay(SimDuration::from_nanos(d)).await.unwrap();
                log.lock().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec!["b", "c", "a"]);
    }

    #[test]
    fn same_time_events_fire_in_spawn_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sim = Sim::new();
        for name in ["first", "second", "third"] {
            let log = log.clone();
            sim.spawn(name, async move {
                delay(SimDuration::from_nanos(7)).await.unwrap();
                log.lock().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec!["first", "second", "third"]);
    }

    #[test]
    fn nested_spawn_runs_at_current_time() {
        let hits = Arc::new(AtomicUsize::new(0));
        let sim = Sim::new();
        let h = hits.clone();
        sim.spawn("parent", async move {
            delay(SimDuration::from_nanos(5)).await.unwrap();
            let h2 = h.clone();
            spawn("child", async move {
                assert_eq!(now().as_nanos(), 5);
                h2.fetch_add(1, Ordering::SeqCst);
            });
            delay(SimDuration::from_nanos(1)).await.unwrap();
            assert_eq!(h.load(Ordering::SeqCst), 1, "child ran before parent's next event");
        });
        sim.run().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn daemon_blocked_forever_is_torn_down() {
        let sim = Sim::new();
        sim.process("daemon").daemon().spawn(async {
            // Parks forever; must be woken with Shutdown.
            let r = park_forever().await;
            assert_eq!(r, Err(SimError::Shutdown));
        });
        sim.spawn("main", async {
            delay(SimDuration::from_nanos(100)).await.unwrap();
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 100);
    }

    #[test]
    fn blocked_non_daemon_is_reported_as_deadlock() {
        let sim = Sim::new();
        sim.spawn("stuck", async {
            let _ = park_forever().await;
        });
        match sim.run() {
            Err(RunError::Deadlock { blocked }) => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].name, "stuck");
                assert_eq!(blocked[0].phase, "blocked");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let sim = Sim::new();
        sim.spawn("boom", async {
            panic!("kaboom");
            #[allow(unreachable_code)]
            ()
        });
        match sim.run() {
            Err(RunError::ProcessPanic(name, msg)) => {
                assert_eq!(name, "boom");
                assert!(msg.contains("kaboom"));
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn delay_after_shutdown_errors() {
        let sim = Sim::new();
        sim.process("d").daemon().spawn(async {
            assert_eq!(park_forever().await, Err(SimError::Shutdown));
            // Further blocking calls must also fail immediately.
            assert_eq!(delay(SimDuration::from_nanos(1)).await, Err(SimError::Shutdown));
        });
        sim.run().unwrap();
    }

    #[test]
    fn yield_now_interleaves_same_time_processes() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sim = Sim::new();
        for name in ["a", "b"] {
            let log = log.clone();
            sim.spawn(name, async move {
                for i in 0..3 {
                    log.lock().push(format!("{name}{i}"));
                    yield_now().await.unwrap();
                }
            });
        }
        sim.run().unwrap();
        let got = log.lock().clone();
        assert_eq!(got, vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn abort_run_returns_the_structured_error() {
        let sim = Sim::new();
        sim.spawn("stuck", async {
            // Would be a deadlock — but the abort below must win.
            let _ = park_forever().await;
        });
        sim.spawn("aborter", async {
            delay(SimDuration::from_nanos(5)).await.unwrap();
            let e = abort_run(RunError::Exhausted { what: "t0".into(), attempts: 4 });
            assert_eq!(e, SimError::Shutdown);
        });
        match sim.run() {
            Err(RunError::Exhausted { what, attempts }) => {
                assert_eq!(what, "t0");
                assert_eq!(attempts, 4);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn first_abort_wins() {
        let sim = Sim::new();
        for i in 0..3u32 {
            sim.spawn(format!("a{i}"), async move {
                delay(SimDuration::from_nanos(i as u64 + 1)).await.unwrap();
                let _ = abort_run(RunError::Exhausted { what: format!("t{i}"), attempts: i });
            });
        }
        match sim.run() {
            Err(RunError::Exhausted { what, .. }) => assert_eq!(what, "t0"),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn determinism_two_identical_runs_match() {
        fn run_once() -> (u64, u64) {
            let sim = Sim::new();
            for i in 0..20u64 {
                sim.spawn(format!("p{i}"), async move {
                    for j in 0..10u64 {
                        delay(SimDuration::from_nanos((i * 7 + j * 13) % 29 + 1)).await.unwrap();
                    }
                });
            }
            let r = sim.run().unwrap();
            (r.end_time.as_nanos(), r.events)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn many_processes_complete() {
        let counter = Arc::new(AtomicUsize::new(0));
        let sim = Sim::new();
        for i in 0..200 {
            let c = counter.clone();
            sim.spawn(format!("p{i}"), async move {
                delay(SimDuration::from_nanos(i as u64)).await.unwrap();
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(report.processes, 200);
    }

    #[test]
    fn process_body_returning_result_exits_cleanly() {
        let sim = Sim::new();
        sim.spawn("q", async {
            delay(SimDuration::from_nanos(3)).await?;
            Ok(())
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 3);
    }

    #[test]
    fn pending_timer_of_dropped_process_does_not_fire() {
        // A process parks with a timeout; the signal arrives first, the
        // process finishes, and its future is dropped while its deadline
        // event is still queued. The stale timer must pop as a no-op —
        // it cannot resume a dead task or drive the clock.
        let sim = Sim::new();
        let sig = crate::sync::Signal::new();
        let s = sig.clone();
        sim.spawn("waiter", async move {
            let got = s.wait_timeout(SimDuration::from_nanos(100)).await.unwrap();
            assert!(got, "signal should arrive before the deadline");
        });
        let s2 = sig.clone();
        sim.spawn("setter", async move {
            delay(SimDuration::from_nanos(25)).await.unwrap();
            s2.set();
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 25, "stale deadline timer drove the clock");
    }

    #[test]
    fn finished_slots_are_reused_and_processes_reports_spawn_count() {
        let sim = Sim::new();
        let shared = sim.shared.clone();
        sim.spawn("root", async {
            for i in 0..50u64 {
                spawn(("p", i), async {
                    yield_now().await.unwrap();
                });
                // Let the child run to completion before the next spawn,
                // so its slot is free for reuse.
                delay(SimDuration::from_nanos(10)).await.unwrap();
            }
        });
        let report = sim.run().unwrap();
        assert_eq!(report.processes, 51, "processes must count spawns, not slots");
        let slots = shared.kernel.lock().procs.len();
        assert!(slots <= 3, "sequential spawn/finish must recycle slots; got {slots} of 51");
    }

    #[test]
    fn panicked_slots_are_never_reused() {
        let sim = Sim::new();
        let shared = sim.shared.clone();
        sim.spawn("root", async {
            for i in 0..5u64 {
                spawn(("bad", i), async {
                    panic!("dies in its slot");
                    #[allow(unreachable_code)]
                    ()
                });
                delay(SimDuration::from_nanos(10)).await.unwrap();
            }
        });
        match sim.run() {
            Err(RunError::ProcessPanic(name, _)) => assert_eq!(name, "bad0"),
            other => panic!("expected panic report, got {other:?}"),
        }
        let slots = shared.kernel.lock().procs.len();
        assert_eq!(slots, 6, "each panicked process must keep its own slot");
    }

    #[test]
    fn stale_wake_of_previous_incarnation_never_resumes_reused_slot() {
        // The waiter finishes at t=25 with its 100ns deadline event
        // still queued; the reincarnation takes over the slot and must
        // sleep straight through that stale event.
        let sim = Sim::new();
        let shared = sim.shared.clone();
        let sig = crate::sync::Signal::new();
        let s = sig.clone();
        sim.spawn("waiter", async move {
            let got = s.wait_timeout(SimDuration::from_nanos(100)).await.unwrap();
            assert!(got, "signal should arrive before the deadline");
        });
        sim.spawn("driver", async move {
            delay(SimDuration::from_nanos(25)).await.unwrap();
            sig.set();
            delay(SimDuration::from_nanos(5)).await.unwrap();
            spawn("reincarnation", async {
                delay(SimDuration::from_nanos(200)).await.unwrap();
                assert_eq!(now().as_nanos(), 230, "stale deadline cut the delay short");
            });
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 230);
        assert_eq!(report.processes, 3);
        assert_eq!(
            shared.kernel.lock().procs.len(),
            2,
            "the reincarnation must reuse the waiter's slot"
        );
    }

    #[test]
    fn wake_dedup_coalesces_redundant_wakes() {
        // Two same-time wakes for one blocked process: the second can
        // only pop stale, so the fast path never enqueues it.
        let sim = Sim::new();
        sim.spawn("sleeper", async {
            park_while({
                let mut registered = false;
                move |shared, pid| {
                    if registered {
                        return Some(Ok(()));
                    }
                    registered = true;
                    let at = shared.now() + SimDuration::from_nanos(5);
                    shared.schedule_wake_current_epoch(pid, at);
                    shared.schedule_wake_current_epoch(pid, at);
                    None
                }
            })
            .await
            .unwrap();
        });
        let report = sim.run().unwrap();
        if std::env::var_os("OMPSS_SIM_NO_FASTPATH").is_none_or(|v| v == "0") {
            assert_eq!(report.wakes_coalesced, 1);
        }
    }
}
