//! The discrete-event simulation kernel.
//!
//! # Model
//!
//! A simulation is a set of *processes* — ordinary Rust closures running
//! on dedicated OS threads — cooperatively scheduled over a virtual
//! clock. Scheduling is continuation-passing: the thread that yields
//! runs the dispatcher itself and hands the baton straight to the next
//! process (or keeps it, when its own wakeup is next). Exactly one
//! thread holds the baton at any instant, so the whole simulation is
//! sequential and **deterministic**: events fire in `(time, sequence)`
//! order and a given program always produces the same schedule, the same
//! byte counts and the same makespan. The driver thread inside
//! [`Sim::run`] sleeps until the queue drains, then owns teardown.
//!
//! Processes interact with virtual time only through their [`Ctx`]
//! handle: [`Ctx::delay`] advances the clock, and the blocking
//! primitives in [`crate::queue`], [`crate::sync`] park the process until
//! another process wakes it. While a process executes Rust code between
//! those calls, virtual time stands still — computation is free unless
//! explicitly charged with `delay`.
//!
//! # Wakeup correctness
//!
//! Every yield bumps the process's *epoch*; every scheduled resume event
//! carries the epoch it was aimed at. A resume whose epoch is stale
//! (the process has run since it was scheduled) is skipped, so spurious
//! or duplicate wakeups can never cut a `delay` short or corrupt a
//! primitive's wait protocol.
//!
//! # Shutdown
//!
//! Processes spawned with [`Ctx::spawn_daemon`] (service loops: workers,
//! device managers, message dispatchers) are expected to block forever.
//! When the event queue drains and only daemons remain blocked, the
//! kernel flips the shutdown flag and resumes them; every blocking call
//! then returns [`SimError::Shutdown`] and the daemon unwinds. If a
//! *non-daemon* process is still blocked when the queue drains, that is
//! a deadlock in the modelled system and [`Sim::run`] reports it.
//!
//! # Host fast paths
//!
//! An activation costs at most one OS context switch (direct baton
//! handoff; a central scheduler thread would need two), and the kernel
//! avoids even that wherever the outcome is already decided (see
//! DESIGN.md §7): a `delay` whose wakeup precedes every queued event
//! resumes inline without parking, a wakeup scheduled behind an earlier
//! live wakeup for the same process is never enqueued (it could only
//! pop stale), and the event heap is compacted when superseded entries
//! outnumber live ones. None of this is observable in virtual time —
//! event and clock-advance counts are identical to the slow path — and
//! setting `OMPSS_SIM_NO_FASTPATH=1` disables the delay/wakeup-dedup
//! shortcuts for A/B determinism checks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::error::{RunError, RunReport, SimError, SimResult};
use crate::time::{SimDuration, SimTime};

/// Identifier of a simulation process.
pub type Pid = usize;

/// Whose turn it is to run on a process's handshake slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Kernel,
    Proc,
}

/// Per-process resume slot. The simulation baton is *continuation
/// passing*: whichever thread yields runs the dispatcher itself and
/// resumes the next process directly, so an activation costs one host
/// context switch (the yielding thread → the resumed thread) instead of
/// the two a central scheduler thread would need, and costs zero when
/// the dispatcher pops the yielding process's own event.
struct ProcCtrl {
    turn: Mutex<Turn>,
    cv: Condvar,
}

impl ProcCtrl {
    fn new() -> Arc<Self> {
        Arc::new(ProcCtrl { turn: Mutex::new(Turn::Kernel), cv: Condvar::new() })
    }

    /// Hand the baton to this process. Called by whatever thread popped
    /// its resume event (another process, the driver, or an exiting
    /// thread); never blocks.
    fn resume(&self) {
        let mut turn = self.turn.lock();
        *turn = Turn::Proc;
        self.cv.notify_one();
    }

    /// Park this process's thread until the next [`ProcCtrl::resume`].
    /// The caller must have published its yield (set `turn` back to
    /// [`Turn::Kernel`]) *before* its wake event became poppable, or the
    /// resume could be lost.
    fn wait_turn(&self) {
        let mut turn = self.turn.lock();
        while *turn == Turn::Kernel {
            self.cv.wait(&mut turn);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Has a resume event in flight (initial spawn or timed wakeup).
    Ready,
    /// Currently executing user code (the kernel is inside `kernel_resume`).
    Running,
    /// Parked in a blocking primitive, waiting for an external wake.
    Blocked,
    /// Thread has terminated.
    Finished,
}

struct ProcSlot {
    ctrl: Arc<ProcCtrl>,
    name: String,
    phase: Phase,
    /// Bumped every time the kernel resumes this process; used to
    /// invalidate stale wakeup events.
    epoch: u64,
    daemon: bool,
    /// `(time, epoch)` of the earliest live resume event queued for this
    /// process. A later wakeup aimed at the same epoch could only ever
    /// pop stale (the earlier one fires first and bumps the epoch), so
    /// it is not enqueued at all — this is the per-process reuse slot
    /// that keeps redundant wakes out of the heap.
    pending_wake: Option<(SimTime, u64)>,
}

/// One entry in the event queue: resume `pid` at `time`, provided its
/// epoch still equals `epoch`. `seq` breaks ties deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: SimTime,
    seq: u64,
    pid: Pid,
    epoch: u64,
}

pub(crate) struct Kernel {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Event>>,
    procs: Vec<ProcSlot>,
    joins: Vec<JoinHandle<()>>,
    live: usize,
    live_non_daemon: usize,
    shutdown: bool,
    events_processed: u64,
    clock_advances: u64,
    /// Events still in the heap that are already known stale: they were
    /// superseded by an earlier wake for the same `(pid, epoch)`. When
    /// they outnumber live events the heap is compacted instead of
    /// letting cancelled wakeups accumulate.
    stale_events: u64,
    /// Wakeups never enqueued because an earlier live wake for the same
    /// `(pid, epoch)` already guaranteed them stale.
    wakes_coalesced: u64,
    panics: Vec<(String, String)>,
    /// First fatal error raised via [`Ctx::abort_run`]; ends the run at
    /// the next kernel step and becomes [`Sim::run`]'s error.
    fatal: Option<RunError>,
}

impl Kernel {
    /// Drop provably-stale events once they dominate the heap. Amortised
    /// O(1) per push: each compaction halves the heap at least.
    fn maybe_compact(&mut self) {
        if self.stale_events >= 64 && self.stale_events * 2 > self.queue.len() as u64 {
            let procs = &self.procs;
            self.queue.retain(|Reverse(ev)| {
                let slot = &procs[ev.pid];
                slot.phase != Phase::Finished && slot.epoch == ev.epoch
            });
            self.stale_events = 0;
        }
    }
}

/// Outcome of one dispatcher step (see [`Shared::dispatch_locked`]).
enum Dispatch {
    /// The popped event belonged to the dispatching process itself: it
    /// simply keeps running. No context switch at all.
    SelfResume,
    /// Another process's event was popped; the caller must hand it the
    /// baton (after releasing the kernel lock) and park.
    Hand(Arc<ProcCtrl>),
    /// Nothing left to dispatch (queue drained, fatal abort, or
    /// shutdown): the caller must wake the driver thread.
    Drained,
}

/// State shared between the kernel and every process context.
pub(crate) struct Shared {
    pub(crate) kernel: Mutex<Kernel>,
    /// Wake token for the driver thread (the one inside [`Sim::run`]).
    /// It sleeps for the whole live phase and is woken exactly when the
    /// baton has nowhere to go: queue drained, fatal abort, or a process
    /// finishing during teardown.
    driver_token: Mutex<bool>,
    driver_cv: Condvar,
    /// Mirror of `Kernel::now` so `Ctx::now` (called on every primitive
    /// operation) never takes the kernel lock. Only the thread holding
    /// the baton writes it; handshake mutexes order the accesses.
    now_ns: AtomicU64,
    /// Mirror of `Kernel::shutdown`, for lock-free checks after a yield.
    shutdown_flag: AtomicBool,
    /// Host fast paths enabled (default). `OMPSS_SIM_NO_FASTPATH=1`
    /// restores the literal kernel for determinism A/B tests.
    fast_paths: bool,
}

impl Shared {
    /// Schedule a wakeup for `pid` at absolute time `at`, targeted at the
    /// process's *current* epoch. Call while the process is blocked (or
    /// about to block); a stale epoch at pop time makes the event a no-op.
    pub(crate) fn schedule_wake_current_epoch(&self, pid: Pid, at: SimTime) {
        let mut k = self.kernel.lock();
        let epoch = k.procs[pid].epoch;
        if self.fast_paths {
            match k.procs[pid].pending_wake {
                // An earlier (or simultaneous, hence lower-seq) live wake
                // already resumes the process and bumps its epoch; this
                // one could only pop stale. Skip the heap entirely.
                Some((t, e)) if e == epoch && t <= at => {
                    k.wakes_coalesced += 1;
                    return;
                }
                // The new wake fires first and strands the old entry.
                Some((_, e)) if e == epoch => k.stale_events += 1,
                _ => {}
            }
            k.procs[pid].pending_wake = Some((at, epoch));
        }
        let seq = k.seq;
        k.seq += 1;
        k.queue.push(Reverse(Event { time: at, seq, pid, epoch }));
        if self.fast_paths {
            k.maybe_compact();
        }
    }

    /// Pop and account the next valid event, deciding who runs next.
    /// This *is* the kernel step; it executes on whichever thread holds
    /// the baton. `me` is the dispatching process (None for the driver
    /// or an exiting thread), so popping one's own wakeup short-circuits
    /// into [`Dispatch::SelfResume`] with no handoff.
    fn dispatch_locked(&self, k: &mut Kernel, me: Option<Pid>) -> Dispatch {
        loop {
            // A fatal abort or teardown stops dispatching: the driver
            // takes over from here.
            if k.fatal.is_some() || k.shutdown {
                return Dispatch::Drained;
            }
            match k.queue.pop() {
                None => return Dispatch::Drained,
                Some(Reverse(ev)) => {
                    let slot = &mut k.procs[ev.pid];
                    if slot.phase == Phase::Finished || slot.epoch != ev.epoch {
                        // Stale wakeup. If it was superseded it was
                        // counted; settle the books.
                        k.stale_events = k.stale_events.saturating_sub(1);
                        continue;
                    }
                    debug_assert!(
                        slot.phase == Phase::Ready || slot.phase == Phase::Blocked,
                        "resuming a process in phase {:?}",
                        slot.phase
                    );
                    slot.phase = Phase::Running;
                    slot.epoch += 1;
                    // A valid pop is necessarily the tracked earliest
                    // live wake for this process.
                    slot.pending_wake = None;
                    if ev.time > k.now {
                        k.clock_advances += 1;
                    }
                    k.now = ev.time;
                    k.events_processed += 1;
                    self.now_ns.store(ev.time.as_nanos(), Ordering::Release);
                    return if me == Some(ev.pid) {
                        Dispatch::SelfResume
                    } else {
                        Dispatch::Hand(k.procs[ev.pid].ctrl.clone())
                    };
                }
            }
        }
    }

    /// Hand control to the driver thread (queue drained / abort /
    /// teardown progress). Never blocks.
    fn wake_driver(&self) {
        let mut token = self.driver_token.lock();
        *token = true;
        self.driver_cv.notify_one();
    }

    /// Driver side: park until a process hands control back.
    fn wait_driver(&self) {
        let mut token = self.driver_token.lock();
        while !*token {
            self.driver_cv.wait(&mut token);
        }
        *token = false;
    }

    pub(crate) fn now(&self) -> SimTime {
        SimTime(self.now_ns.load(Ordering::Acquire))
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown_flag.load(Ordering::Acquire)
    }
}

/// A deterministic discrete-event simulation.
///
/// Build one, spawn a root process, and [`run`](Sim::run) it to
/// completion:
///
/// ```
/// use ompss_sim::{Sim, SimDuration};
///
/// let sim = Sim::new();
/// sim.spawn("main", |ctx| {
///     ctx.delay(SimDuration::from_millis(3)).unwrap();
///     assert_eq!(ctx.now().as_nanos(), 3_000_000);
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time.as_nanos(), 3_000_000);
/// ```
pub struct Sim {
    shared: Arc<Shared>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at time zero.
    pub fn new() -> Self {
        Sim {
            shared: Arc::new(Shared {
                kernel: Mutex::new(Kernel {
                    now: SimTime::ZERO,
                    seq: 0,
                    queue: BinaryHeap::new(),
                    procs: Vec::new(),
                    joins: Vec::new(),
                    live: 0,
                    live_non_daemon: 0,
                    shutdown: false,
                    events_processed: 0,
                    clock_advances: 0,
                    stale_events: 0,
                    wakes_coalesced: 0,
                    panics: Vec::new(),
                    fatal: None,
                }),
                driver_token: Mutex::new(false),
                driver_cv: Condvar::new(),
                now_ns: AtomicU64::new(0),
                shutdown_flag: AtomicBool::new(false),
                fast_paths: std::env::var_os("OMPSS_SIM_NO_FASTPATH").is_none_or(|v| v == "0"),
            }),
        }
    }

    /// Spawn a regular (non-daemon) process. It becomes runnable at the
    /// current virtual time. The simulation is not complete until every
    /// non-daemon process has returned.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(Ctx) + Send + 'static,
    {
        spawn_process(&self.shared, name.into(), false, f)
    }

    /// Spawn a daemon process: a service loop that blocks forever and is
    /// torn down via [`SimError::Shutdown`] when the simulation drains.
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(Ctx) + Send + 'static,
    {
        spawn_process(&self.shared, name.into(), true, f)
    }

    /// Run the simulation until the event queue drains, then tear down
    /// daemons and join every process thread.
    ///
    /// Returns an error if the modelled system deadlocked (a non-daemon
    /// process was still blocked at drain time) or any process panicked.
    pub fn run(self) -> Result<RunReport, RunError> {
        let host_start = Instant::now();
        // Dispatch the first event; after that the baton circulates
        // process-to-process and this thread sleeps until the queue
        // drains or a process aborts the run.
        loop {
            let hand = {
                let mut k = self.shared.kernel.lock();
                match self.shared.dispatch_locked(&mut k, None) {
                    Dispatch::Hand(ctrl) => Some(ctrl),
                    Dispatch::Drained => None,
                    Dispatch::SelfResume => unreachable!("driver has no events of its own"),
                }
            };
            match hand {
                Some(ctrl) => ctrl.resume(),
                None => break,
            }
            self.shared.wait_driver();
        }

        // Queue drained. Non-daemon processes still alive are deadlocked.
        let deadlocked: Vec<String> = {
            let k = self.shared.kernel.lock();
            k.procs
                .iter()
                .filter(|p| !p.daemon && p.phase != Phase::Finished)
                .map(|p| p.name.clone())
                .collect()
        };

        // Tear down daemons (and, on deadlock, the stuck processes too,
        // so their threads don't leak). Blocking calls observe the
        // shutdown flag and return `Err(Shutdown)`.
        self.shared.kernel.lock().shutdown = true;
        self.shared.shutdown_flag.store(true, Ordering::Release);
        let mut guard = 0usize;
        loop {
            let blocked: Vec<Arc<ProcCtrl>> = {
                let mut k = self.shared.kernel.lock();
                let mut v = Vec::new();
                for slot in k.procs.iter_mut() {
                    if slot.phase == Phase::Blocked || slot.phase == Phase::Ready {
                        slot.phase = Phase::Running;
                        slot.epoch += 1;
                        v.push(slot.ctrl.clone());
                    }
                }
                v
            };
            if blocked.is_empty() {
                break;
            }
            // One at a time: a resumed process cannot block again (every
            // yield path checks the shutdown flag first), so it runs to
            // completion and its exit path hands control back here.
            for ctrl in blocked {
                ctrl.resume();
                self.shared.wait_driver();
            }
            guard += 1;
            assert!(guard < 1000, "a process is ignoring SimError::Shutdown");
        }

        // All threads have terminated; join them.
        let joins = {
            let mut k = self.shared.kernel.lock();
            std::mem::take(&mut k.joins)
        };
        for j in joins {
            let _ = j.join();
        }

        let mut k = self.shared.kernel.lock();
        // An abort takes precedence: processes blocked at that instant
        // (and panics from their forced unwinds) are consequences of
        // stopping early, not independent failures.
        if let Some(fatal) = k.fatal.take() {
            return Err(fatal);
        }
        if let Some((name, msg)) = k.panics.first() {
            return Err(RunError::ProcessPanic(name.clone(), msg.clone()));
        }
        if !deadlocked.is_empty() {
            return Err(RunError::Deadlock(deadlocked));
        }
        Ok(RunReport {
            end_time: k.now,
            events: k.events_processed,
            clock_advances: k.clock_advances,
            processes: k.procs.len(),
            host_ns: host_start.elapsed().as_nanos() as u64,
            wakes_coalesced: k.wakes_coalesced,
        })
    }
}

fn spawn_process<F>(shared: &Arc<Shared>, name: String, daemon: bool, f: F) -> Pid
where
    F: FnOnce(Ctx) + Send + 'static,
{
    let ctrl = ProcCtrl::new();
    let pid;
    {
        let mut k = shared.kernel.lock();
        pid = k.procs.len();
        // Initial activation at the current time, epoch 0.
        let now = k.now;
        k.procs.push(ProcSlot {
            ctrl: ctrl.clone(),
            name: name.clone(),
            phase: Phase::Ready,
            epoch: 0,
            daemon,
            pending_wake: Some((now, 0)),
        });
        k.live += 1;
        if !daemon {
            k.live_non_daemon += 1;
        }
        let seq = k.seq;
        k.seq += 1;
        k.queue.push(Reverse(Event { time: now, seq, pid, epoch: 0 }));
    }

    let ctx = Ctx { shared: shared.clone(), pid, ctrl: ctrl.clone() };
    let thread_shared = shared.clone();
    let thread_ctrl = ctrl;
    let handle = std::thread::Builder::new()
        .name(format!("sim:{name}"))
        .spawn(move || {
            thread_ctrl.wait_turn();
            let result = catch_unwind(AssertUnwindSafe(|| f(ctx)));
            // This thread still holds the baton: pass it on (next event's
            // process, or the driver if nothing is left) before exiting.
            let hand = {
                let mut k = thread_shared.kernel.lock();
                let slot = &mut k.procs[pid];
                slot.phase = Phase::Finished;
                slot.epoch += 1;
                let (slot_name, slot_daemon) = (slot.name.clone(), slot.daemon);
                k.live -= 1;
                if !slot_daemon {
                    k.live_non_daemon -= 1;
                }
                if let Err(payload) = result {
                    let msg = panic_message(&*payload);
                    // Shutdown unwinds may legitimately panic through
                    // user code that unwraps a SimResult; only record
                    // panics that happen while the simulation is live.
                    if !k.shutdown {
                        k.panics.push((slot_name, msg));
                    }
                }
                match thread_shared.dispatch_locked(&mut k, None) {
                    Dispatch::Hand(ctrl) => Some(ctrl),
                    Dispatch::Drained => None,
                    Dispatch::SelfResume => unreachable!("finished process cannot be resumed"),
                }
            };
            match hand {
                Some(ctrl) => ctrl.resume(),
                None => thread_shared.wake_driver(),
            }
        })
        .expect("failed to spawn simulation process thread");
    shared.kernel.lock().joins.push(handle);
    pid
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A process's handle to the simulation: clock access, delays, and the
/// ability to spawn further processes. Cheap to clone; every blocking
/// primitive takes `&Ctx` to identify and park the calling process.
#[derive(Clone)]
pub struct Ctx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) pid: Pid,
    /// This process's handshake baton, cached so a yield never has to
    /// take the kernel lock just to find it.
    ctrl: Arc<ProcCtrl>,
}

impl Ctx {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// This process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Advance virtual time by `d`: park this process and resume it once
    /// every event scheduled before `now + d` has run.
    ///
    /// Fast path: when no queued event precedes the wakeup, parking
    /// would hand the baton to the kernel only for it to pop our own
    /// event straight back — so the clock advances inline instead,
    /// with identical event accounting and no context switch.
    pub fn delay(&self, d: SimDuration) -> SimResult<()> {
        let mut k = self.shared.kernel.lock();
        if k.shutdown {
            return Err(SimError::Shutdown);
        }
        let at = k.now + d;
        if self.shared.fast_paths && k.fatal.is_none() {
            let head_due = match k.queue.peek() {
                Some(Reverse(ev)) => ev.time <= at,
                None => false,
            };
            if !head_due {
                let now = k.now;
                let slot = &mut k.procs[self.pid];
                debug_assert_eq!(slot.phase, Phase::Running);
                debug_assert!(
                    !matches!(slot.pending_wake, Some((_, e)) if e == slot.epoch),
                    "running process has a live wake in flight"
                );
                // The virtual yield-and-resume, minus the heap traffic.
                slot.epoch += 1;
                if at > now {
                    k.clock_advances += 1;
                }
                k.now = at;
                k.events_processed += 1;
                self.shared.now_ns.store(at.as_nanos(), Ordering::Release);
                return Ok(());
            }
        }
        let seq = k.seq;
        k.seq += 1;
        let epoch = k.procs[self.pid].epoch;
        k.procs[self.pid].phase = Phase::Ready;
        if self.shared.fast_paths {
            k.procs[self.pid].pending_wake = Some((at, epoch));
        }
        k.queue.push(Reverse(Event { time: at, seq, pid: self.pid, epoch }));
        self.yield_baton(k)
    }

    /// Yield to the kernel without scheduling a wakeup; some other
    /// process (via a primitive) must wake this one. Used by the blocking
    /// primitives; application code should prefer those.
    pub(crate) fn park(&self) -> SimResult<()> {
        let mut k = self.shared.kernel.lock();
        if k.shutdown {
            return Err(SimError::Shutdown);
        }
        k.procs[self.pid].phase = Phase::Blocked;
        self.yield_baton(k)
    }

    /// Relinquish the CPU until the next event at the same timestamp has
    /// run: a deterministic `yield_now`. Useful to let same-time events
    /// interleave fairly.
    pub fn yield_now(&self) -> SimResult<()> {
        self.delay(SimDuration::ZERO)
    }

    /// Abort the whole simulation with a structured error: the kernel
    /// stops dispatching, daemons are torn down, and [`Sim::run`]
    /// returns `err` (first abort wins). Returns [`SimError::Shutdown`]
    /// so the caller can unwind through the ordinary `?` path.
    pub fn abort_run(&self, err: RunError) -> SimError {
        let mut k = self.shared.kernel.lock();
        if !k.shutdown && k.fatal.is_none() {
            k.fatal = Some(err);
        }
        SimError::Shutdown
    }

    /// Give up the baton: run the dispatcher on this thread. If our own
    /// event is next we simply keep running (zero context switches);
    /// otherwise hand the baton straight to the next process (one
    /// switch) — or to the driver if nothing is left — and park until
    /// our own wakeup is dispatched.
    ///
    /// The caller must already have published its yield in `k` (phase
    /// set to `Ready`/`Blocked`, wake event pushed if self-scheduled).
    fn yield_baton(&self, mut k: parking_lot::MutexGuard<'_, Kernel>) -> SimResult<()> {
        let hand = match self.shared.dispatch_locked(&mut k, Some(self.pid)) {
            Dispatch::SelfResume => {
                return Ok(());
            }
            Dispatch::Hand(ctrl) => Some(ctrl),
            Dispatch::Drained => None,
        };
        // Flip our turn *before* releasing the kernel lock: our wake
        // event only becomes poppable by other threads once the lock
        // drops, so the resume targeting it cannot be lost.
        *self.ctrl.turn.lock() = Turn::Kernel;
        drop(k);
        match hand {
            Some(ctrl) => ctrl.resume(),
            None => self.shared.wake_driver(),
        }
        self.ctrl.wait_turn();
        if self.shared.is_shutdown() {
            return Err(SimError::Shutdown);
        }
        Ok(())
    }

    /// Spawn a non-daemon child process, runnable at the current time.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(Ctx) + Send + 'static,
    {
        spawn_process(&self.shared, name.into(), false, f)
    }

    /// Spawn a daemon child process (see [`Sim::spawn_daemon`]).
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(Ctx) + Send + 'static,
    {
        spawn_process(&self.shared, name.into(), true, f)
    }

    /// Internal access for primitives in sibling modules.
    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_sim_completes() {
        let report = Sim::new().run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.events, 0);
    }

    #[test]
    fn single_process_delays_advance_clock() {
        let sim = Sim::new();
        sim.spawn("p", |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.delay(SimDuration::from_nanos(10)).unwrap();
            assert_eq!(ctx.now().as_nanos(), 10);
            ctx.delay(SimDuration::from_nanos(5)).unwrap();
            assert_eq!(ctx.now().as_nanos(), 15);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 15);
    }

    #[test]
    fn events_fire_in_time_order_across_processes() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sim = Sim::new();
        for (name, d) in [("a", 30u64), ("b", 10), ("c", 20)] {
            let log = log.clone();
            sim.spawn(name, move |ctx| {
                ctx.delay(SimDuration::from_nanos(d)).unwrap();
                log.lock().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec!["b", "c", "a"]);
    }

    #[test]
    fn same_time_events_fire_in_spawn_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sim = Sim::new();
        for name in ["first", "second", "third"] {
            let log = log.clone();
            sim.spawn(name, move |ctx| {
                ctx.delay(SimDuration::from_nanos(7)).unwrap();
                log.lock().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec!["first", "second", "third"]);
    }

    #[test]
    fn nested_spawn_runs_at_current_time() {
        let hits = Arc::new(AtomicUsize::new(0));
        let sim = Sim::new();
        let h = hits.clone();
        sim.spawn("parent", move |ctx| {
            ctx.delay(SimDuration::from_nanos(5)).unwrap();
            let h2 = h.clone();
            ctx.spawn("child", move |cctx| {
                assert_eq!(cctx.now().as_nanos(), 5);
                h2.fetch_add(1, Ordering::SeqCst);
            });
            ctx.delay(SimDuration::from_nanos(1)).unwrap();
            assert_eq!(h.load(Ordering::SeqCst), 1, "child ran before parent's next event");
        });
        sim.run().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn daemon_blocked_forever_is_torn_down() {
        let sim = Sim::new();
        sim.spawn_daemon("daemon", |ctx| {
            // Parks forever; must be woken with Shutdown.
            let r = ctx.park();
            assert_eq!(r, Err(SimError::Shutdown));
        });
        sim.spawn("main", |ctx| {
            ctx.delay(SimDuration::from_nanos(100)).unwrap();
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 100);
    }

    #[test]
    fn blocked_non_daemon_is_reported_as_deadlock() {
        let sim = Sim::new();
        sim.spawn("stuck", |ctx| {
            let _ = ctx.park();
        });
        match sim.run() {
            Err(RunError::Deadlock(names)) => assert_eq!(names, vec!["stuck".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let sim = Sim::new();
        sim.spawn("boom", |_ctx| panic!("kaboom"));
        match sim.run() {
            Err(RunError::ProcessPanic(name, msg)) => {
                assert_eq!(name, "boom");
                assert!(msg.contains("kaboom"));
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn delay_after_shutdown_errors() {
        let sim = Sim::new();
        sim.spawn_daemon("d", |ctx| {
            assert_eq!(ctx.park(), Err(SimError::Shutdown));
            // Further blocking calls must also fail immediately.
            assert_eq!(ctx.delay(SimDuration::from_nanos(1)), Err(SimError::Shutdown));
        });
        sim.run().unwrap();
    }

    #[test]
    fn yield_now_interleaves_same_time_processes() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sim = Sim::new();
        for name in ["a", "b"] {
            let log = log.clone();
            sim.spawn(name, move |ctx| {
                for i in 0..3 {
                    log.lock().push(format!("{name}{i}"));
                    ctx.yield_now().unwrap();
                }
            });
        }
        sim.run().unwrap();
        let got = log.lock().clone();
        assert_eq!(got, vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn abort_run_returns_the_structured_error() {
        let sim = Sim::new();
        sim.spawn("stuck", |ctx| {
            // Would be a deadlock — but the abort below must win.
            let _ = ctx.park();
        });
        sim.spawn("aborter", |ctx| {
            ctx.delay(SimDuration::from_nanos(5)).unwrap();
            let e = ctx.abort_run(RunError::Exhausted { what: "t0".into(), attempts: 4 });
            assert_eq!(e, SimError::Shutdown);
        });
        match sim.run() {
            Err(RunError::Exhausted { what, attempts }) => {
                assert_eq!(what, "t0");
                assert_eq!(attempts, 4);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn first_abort_wins() {
        let sim = Sim::new();
        for i in 0..3u32 {
            sim.spawn(format!("a{i}"), move |ctx| {
                ctx.delay(SimDuration::from_nanos(i as u64 + 1)).unwrap();
                let _ = ctx.abort_run(RunError::Exhausted { what: format!("t{i}"), attempts: i });
            });
        }
        match sim.run() {
            Err(RunError::Exhausted { what, .. }) => assert_eq!(what, "t0"),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn determinism_two_identical_runs_match() {
        fn run_once() -> (u64, u64) {
            let sim = Sim::new();
            for i in 0..20u64 {
                sim.spawn(format!("p{i}"), move |ctx| {
                    for j in 0..10u64 {
                        ctx.delay(SimDuration::from_nanos((i * 7 + j * 13) % 29 + 1)).unwrap();
                    }
                });
            }
            let r = sim.run().unwrap();
            (r.end_time.as_nanos(), r.events)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn many_processes_complete() {
        let counter = Arc::new(AtomicUsize::new(0));
        let sim = Sim::new();
        for i in 0..200 {
            let c = counter.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                ctx.delay(SimDuration::from_nanos(i as u64)).unwrap();
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(report.processes, 200);
    }
}
