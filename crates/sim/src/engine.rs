//! The discrete-event simulation kernel.
//!
//! # Model
//!
//! A simulation is a set of *processes* — ordinary Rust closures running
//! on dedicated OS threads — cooperatively scheduled by a single *kernel*
//! thread over a virtual clock. Exactly one thread (kernel or one
//! process) runs at any instant, so the whole simulation is sequential
//! and **deterministic**: events fire in `(time, sequence)` order and a
//! given program always produces the same schedule, the same byte counts
//! and the same makespan.
//!
//! Processes interact with virtual time only through their [`Ctx`]
//! handle: [`Ctx::delay`] advances the clock, and the blocking
//! primitives in [`crate::queue`], [`crate::sync`] park the process until
//! another process wakes it. While a process executes Rust code between
//! those calls, virtual time stands still — computation is free unless
//! explicitly charged with `delay`.
//!
//! # Wakeup correctness
//!
//! Every yield bumps the process's *epoch*; every scheduled resume event
//! carries the epoch it was aimed at. A resume whose epoch is stale
//! (the process has run since it was scheduled) is skipped, so spurious
//! or duplicate wakeups can never cut a `delay` short or corrupt a
//! primitive's wait protocol.
//!
//! # Shutdown
//!
//! Processes spawned with [`Ctx::spawn_daemon`] (service loops: workers,
//! device managers, message dispatchers) are expected to block forever.
//! When the event queue drains and only daemons remain blocked, the
//! kernel flips the shutdown flag and resumes them; every blocking call
//! then returns [`SimError::Shutdown`] and the daemon unwinds. If a
//! *non-daemon* process is still blocked when the queue drains, that is
//! a deadlock in the modelled system and [`Sim::run`] reports it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::error::{RunError, RunReport, SimError, SimResult};
use crate::time::{SimDuration, SimTime};

/// Identifier of a simulation process.
pub type Pid = usize;

/// Whose turn it is to run on a process's handshake slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Kernel,
    Proc,
}

/// Per-process handshake: a tiny baton passed between the kernel thread
/// and the process thread. Only these two threads ever touch it.
struct ProcCtrl {
    turn: Mutex<Turn>,
    cv: Condvar,
}

impl ProcCtrl {
    fn new() -> Arc<Self> {
        Arc::new(ProcCtrl { turn: Mutex::new(Turn::Kernel), cv: Condvar::new() })
    }

    /// Called by the kernel: hand the baton to the process and wait for
    /// it back. Returns when the process has yielded or finished.
    fn kernel_resume(&self) {
        let mut turn = self.turn.lock();
        *turn = Turn::Proc;
        self.cv.notify_one();
        while *turn == Turn::Proc {
            self.cv.wait(&mut turn);
        }
    }

    /// Called by the process: hand the baton back to the kernel and wait
    /// for the next activation.
    fn proc_yield(&self) {
        let mut turn = self.turn.lock();
        *turn = Turn::Kernel;
        self.cv.notify_one();
        while *turn == Turn::Kernel {
            self.cv.wait(&mut turn);
        }
    }

    /// Called by the process thread on startup: wait for the first
    /// activation without handing anything back (the baton starts with
    /// the kernel).
    fn proc_wait_first(&self) {
        let mut turn = self.turn.lock();
        while *turn == Turn::Kernel {
            self.cv.wait(&mut turn);
        }
    }

    /// Called by the process when it terminates: return the baton for
    /// good without waiting.
    fn proc_finish(&self) {
        let mut turn = self.turn.lock();
        *turn = Turn::Kernel;
        self.cv.notify_one();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Has a resume event in flight (initial spawn or timed wakeup).
    Ready,
    /// Currently executing user code (the kernel is inside `kernel_resume`).
    Running,
    /// Parked in a blocking primitive, waiting for an external wake.
    Blocked,
    /// Thread has terminated.
    Finished,
}

struct ProcSlot {
    ctrl: Arc<ProcCtrl>,
    name: String,
    phase: Phase,
    /// Bumped every time the kernel resumes this process; used to
    /// invalidate stale wakeup events.
    epoch: u64,
    daemon: bool,
}

/// One entry in the event queue: resume `pid` at `time`, provided its
/// epoch still equals `epoch`. `seq` breaks ties deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: SimTime,
    seq: u64,
    pid: Pid,
    epoch: u64,
}

pub(crate) struct Kernel {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Event>>,
    procs: Vec<ProcSlot>,
    joins: Vec<JoinHandle<()>>,
    live: usize,
    live_non_daemon: usize,
    shutdown: bool,
    events_processed: u64,
    clock_advances: u64,
    panics: Vec<(String, String)>,
    /// First fatal error raised via [`Ctx::abort_run`]; ends the run at
    /// the next kernel step and becomes [`Sim::run`]'s error.
    fatal: Option<RunError>,
}

/// State shared between the kernel and every process context.
pub(crate) struct Shared {
    pub(crate) kernel: Mutex<Kernel>,
}

impl Shared {
    /// Schedule a wakeup for `pid` at absolute time `at`, targeted at the
    /// process's *current* epoch. Call while the process is blocked (or
    /// about to block); a stale epoch at pop time makes the event a no-op.
    pub(crate) fn schedule_wake_current_epoch(&self, pid: Pid, at: SimTime) {
        let mut k = self.kernel.lock();
        let epoch = k.procs[pid].epoch;
        let seq = k.seq;
        k.seq += 1;
        k.queue.push(Reverse(Event { time: at, seq, pid, epoch }));
    }

    pub(crate) fn now(&self) -> SimTime {
        self.kernel.lock().now
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.kernel.lock().shutdown
    }
}

/// A deterministic discrete-event simulation.
///
/// Build one, spawn a root process, and [`run`](Sim::run) it to
/// completion:
///
/// ```
/// use ompss_sim::{Sim, SimDuration};
///
/// let sim = Sim::new();
/// sim.spawn("main", |ctx| {
///     ctx.delay(SimDuration::from_millis(3)).unwrap();
///     assert_eq!(ctx.now().as_nanos(), 3_000_000);
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time.as_nanos(), 3_000_000);
/// ```
pub struct Sim {
    shared: Arc<Shared>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at time zero.
    pub fn new() -> Self {
        Sim {
            shared: Arc::new(Shared {
                kernel: Mutex::new(Kernel {
                    now: SimTime::ZERO,
                    seq: 0,
                    queue: BinaryHeap::new(),
                    procs: Vec::new(),
                    joins: Vec::new(),
                    live: 0,
                    live_non_daemon: 0,
                    shutdown: false,
                    events_processed: 0,
                    clock_advances: 0,
                    panics: Vec::new(),
                    fatal: None,
                }),
            }),
        }
    }

    /// Spawn a regular (non-daemon) process. It becomes runnable at the
    /// current virtual time. The simulation is not complete until every
    /// non-daemon process has returned.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(Ctx) + Send + 'static,
    {
        spawn_process(&self.shared, name.into(), false, f)
    }

    /// Spawn a daemon process: a service loop that blocks forever and is
    /// torn down via [`SimError::Shutdown`] when the simulation drains.
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(Ctx) + Send + 'static,
    {
        spawn_process(&self.shared, name.into(), true, f)
    }

    /// Run the simulation until the event queue drains, then tear down
    /// daemons and join every process thread.
    ///
    /// Returns an error if the modelled system deadlocked (a non-daemon
    /// process was still blocked at drain time) or any process panicked.
    pub fn run(self) -> Result<RunReport, RunError> {
        loop {
            // Pop the next valid event.
            let next = {
                let mut k = self.shared.kernel.lock();
                loop {
                    // A process aborted the run: stop dispatching and
                    // fall through to the teardown below.
                    if k.fatal.is_some() {
                        break None;
                    }
                    match k.queue.pop() {
                        None => break None,
                        Some(Reverse(ev)) => {
                            let slot = &mut k.procs[ev.pid];
                            if slot.phase == Phase::Finished || slot.epoch != ev.epoch {
                                continue; // stale wakeup
                            }
                            debug_assert!(
                                slot.phase == Phase::Ready || slot.phase == Phase::Blocked,
                                "resuming a process in phase {:?}",
                                slot.phase
                            );
                            slot.phase = Phase::Running;
                            slot.epoch += 1;
                            let ctrl = slot.ctrl.clone();
                            if ev.time > k.now {
                                k.clock_advances += 1;
                            }
                            k.now = ev.time;
                            k.events_processed += 1;
                            break Some(ctrl);
                        }
                    }
                }
            };
            match next {
                Some(ctrl) => ctrl.kernel_resume(),
                None => break,
            }
        }

        // Queue drained. Non-daemon processes still alive are deadlocked.
        let deadlocked: Vec<String> = {
            let k = self.shared.kernel.lock();
            k.procs
                .iter()
                .filter(|p| !p.daemon && p.phase != Phase::Finished)
                .map(|p| p.name.clone())
                .collect()
        };

        // Tear down daemons (and, on deadlock, the stuck processes too,
        // so their threads don't leak). Blocking calls observe the
        // shutdown flag and return `Err(Shutdown)`.
        self.shared.kernel.lock().shutdown = true;
        let mut guard = 0usize;
        loop {
            let blocked: Vec<Arc<ProcCtrl>> = {
                let mut k = self.shared.kernel.lock();
                let mut v = Vec::new();
                for slot in k.procs.iter_mut() {
                    if slot.phase == Phase::Blocked || slot.phase == Phase::Ready {
                        slot.phase = Phase::Running;
                        slot.epoch += 1;
                        v.push(slot.ctrl.clone());
                    }
                }
                v
            };
            if blocked.is_empty() {
                break;
            }
            for ctrl in blocked {
                ctrl.kernel_resume();
            }
            guard += 1;
            assert!(guard < 1000, "a process is ignoring SimError::Shutdown");
        }

        // All threads have terminated; join them.
        let joins = {
            let mut k = self.shared.kernel.lock();
            std::mem::take(&mut k.joins)
        };
        for j in joins {
            let _ = j.join();
        }

        let mut k = self.shared.kernel.lock();
        // An abort takes precedence: processes blocked at that instant
        // (and panics from their forced unwinds) are consequences of
        // stopping early, not independent failures.
        if let Some(fatal) = k.fatal.take() {
            return Err(fatal);
        }
        if let Some((name, msg)) = k.panics.first() {
            return Err(RunError::ProcessPanic(name.clone(), msg.clone()));
        }
        if !deadlocked.is_empty() {
            return Err(RunError::Deadlock(deadlocked));
        }
        Ok(RunReport {
            end_time: k.now,
            events: k.events_processed,
            clock_advances: k.clock_advances,
            processes: k.procs.len(),
        })
    }
}

fn spawn_process<F>(shared: &Arc<Shared>, name: String, daemon: bool, f: F) -> Pid
where
    F: FnOnce(Ctx) + Send + 'static,
{
    let ctrl = ProcCtrl::new();
    let pid;
    {
        let mut k = shared.kernel.lock();
        pid = k.procs.len();
        k.procs.push(ProcSlot {
            ctrl: ctrl.clone(),
            name: name.clone(),
            phase: Phase::Ready,
            epoch: 0,
            daemon,
        });
        k.live += 1;
        if !daemon {
            k.live_non_daemon += 1;
        }
        // Initial activation at the current time, epoch 0.
        let now = k.now;
        let seq = k.seq;
        k.seq += 1;
        k.queue.push(Reverse(Event { time: now, seq, pid, epoch: 0 }));
    }

    let ctx = Ctx { shared: shared.clone(), pid };
    let thread_shared = shared.clone();
    let thread_ctrl = ctrl;
    let handle = std::thread::Builder::new()
        .name(format!("sim:{name}"))
        .spawn(move || {
            thread_ctrl.proc_wait_first();
            let result = catch_unwind(AssertUnwindSafe(|| f(ctx)));
            {
                let mut k = thread_shared.kernel.lock();
                let slot = &mut k.procs[pid];
                slot.phase = Phase::Finished;
                slot.epoch += 1;
                let (slot_name, slot_daemon) = (slot.name.clone(), slot.daemon);
                k.live -= 1;
                if !slot_daemon {
                    k.live_non_daemon -= 1;
                }
                if let Err(payload) = result {
                    let msg = panic_message(&*payload);
                    // Shutdown unwinds may legitimately panic through
                    // user code that unwraps a SimResult; only record
                    // panics that happen while the simulation is live.
                    if !k.shutdown {
                        k.panics.push((slot_name, msg));
                    }
                }
            }
            thread_ctrl.proc_finish();
        })
        .expect("failed to spawn simulation process thread");
    shared.kernel.lock().joins.push(handle);
    pid
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A process's handle to the simulation: clock access, delays, and the
/// ability to spawn further processes. Cheap to clone; every blocking
/// primitive takes `&Ctx` to identify and park the calling process.
#[derive(Clone)]
pub struct Ctx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) pid: Pid,
}

impl Ctx {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// This process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Advance virtual time by `d`: park this process and resume it once
    /// every event scheduled before `now + d` has run.
    pub fn delay(&self, d: SimDuration) -> SimResult<()> {
        {
            let mut k = self.shared.kernel.lock();
            if k.shutdown {
                return Err(SimError::Shutdown);
            }
            let at = k.now + d;
            let seq = k.seq;
            k.seq += 1;
            let epoch = k.procs[self.pid].epoch;
            k.procs[self.pid].phase = Phase::Ready;
            k.queue.push(Reverse(Event { time: at, seq, pid: self.pid, epoch }));
        }
        self.handshake()?;
        Ok(())
    }

    /// Yield to the kernel without scheduling a wakeup; some other
    /// process (via a primitive) must wake this one. Used by the blocking
    /// primitives; application code should prefer those.
    pub(crate) fn park(&self) -> SimResult<()> {
        {
            let mut k = self.shared.kernel.lock();
            if k.shutdown {
                return Err(SimError::Shutdown);
            }
            k.procs[self.pid].phase = Phase::Blocked;
        }
        self.handshake()?;
        Ok(())
    }

    /// Relinquish the CPU until the next event at the same timestamp has
    /// run: a deterministic `yield_now`. Useful to let same-time events
    /// interleave fairly.
    pub fn yield_now(&self) -> SimResult<()> {
        self.delay(SimDuration::ZERO)
    }

    /// Abort the whole simulation with a structured error: the kernel
    /// stops dispatching, daemons are torn down, and [`Sim::run`]
    /// returns `err` (first abort wins). Returns [`SimError::Shutdown`]
    /// so the caller can unwind through the ordinary `?` path.
    pub fn abort_run(&self, err: RunError) -> SimError {
        let mut k = self.shared.kernel.lock();
        if !k.shutdown && k.fatal.is_none() {
            k.fatal = Some(err);
        }
        SimError::Shutdown
    }

    fn handshake(&self) -> SimResult<()> {
        let ctrl = {
            let k = self.shared.kernel.lock();
            k.procs[self.pid].ctrl.clone()
        };
        ctrl.proc_yield();
        if self.shared.is_shutdown() {
            return Err(SimError::Shutdown);
        }
        Ok(())
    }

    /// Spawn a non-daemon child process, runnable at the current time.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(Ctx) + Send + 'static,
    {
        spawn_process(&self.shared, name.into(), false, f)
    }

    /// Spawn a daemon child process (see [`Sim::spawn_daemon`]).
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(Ctx) + Send + 'static,
    {
        spawn_process(&self.shared, name.into(), true, f)
    }

    /// Internal access for primitives in sibling modules.
    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_sim_completes() {
        let report = Sim::new().run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.events, 0);
    }

    #[test]
    fn single_process_delays_advance_clock() {
        let sim = Sim::new();
        sim.spawn("p", |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.delay(SimDuration::from_nanos(10)).unwrap();
            assert_eq!(ctx.now().as_nanos(), 10);
            ctx.delay(SimDuration::from_nanos(5)).unwrap();
            assert_eq!(ctx.now().as_nanos(), 15);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 15);
    }

    #[test]
    fn events_fire_in_time_order_across_processes() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sim = Sim::new();
        for (name, d) in [("a", 30u64), ("b", 10), ("c", 20)] {
            let log = log.clone();
            sim.spawn(name, move |ctx| {
                ctx.delay(SimDuration::from_nanos(d)).unwrap();
                log.lock().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec!["b", "c", "a"]);
    }

    #[test]
    fn same_time_events_fire_in_spawn_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sim = Sim::new();
        for name in ["first", "second", "third"] {
            let log = log.clone();
            sim.spawn(name, move |ctx| {
                ctx.delay(SimDuration::from_nanos(7)).unwrap();
                log.lock().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec!["first", "second", "third"]);
    }

    #[test]
    fn nested_spawn_runs_at_current_time() {
        let hits = Arc::new(AtomicUsize::new(0));
        let sim = Sim::new();
        let h = hits.clone();
        sim.spawn("parent", move |ctx| {
            ctx.delay(SimDuration::from_nanos(5)).unwrap();
            let h2 = h.clone();
            ctx.spawn("child", move |cctx| {
                assert_eq!(cctx.now().as_nanos(), 5);
                h2.fetch_add(1, Ordering::SeqCst);
            });
            ctx.delay(SimDuration::from_nanos(1)).unwrap();
            assert_eq!(h.load(Ordering::SeqCst), 1, "child ran before parent's next event");
        });
        sim.run().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn daemon_blocked_forever_is_torn_down() {
        let sim = Sim::new();
        sim.spawn_daemon("daemon", |ctx| {
            // Parks forever; must be woken with Shutdown.
            let r = ctx.park();
            assert_eq!(r, Err(SimError::Shutdown));
        });
        sim.spawn("main", |ctx| {
            ctx.delay(SimDuration::from_nanos(100)).unwrap();
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 100);
    }

    #[test]
    fn blocked_non_daemon_is_reported_as_deadlock() {
        let sim = Sim::new();
        sim.spawn("stuck", |ctx| {
            let _ = ctx.park();
        });
        match sim.run() {
            Err(RunError::Deadlock(names)) => assert_eq!(names, vec!["stuck".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let sim = Sim::new();
        sim.spawn("boom", |_ctx| panic!("kaboom"));
        match sim.run() {
            Err(RunError::ProcessPanic(name, msg)) => {
                assert_eq!(name, "boom");
                assert!(msg.contains("kaboom"));
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn delay_after_shutdown_errors() {
        let sim = Sim::new();
        sim.spawn_daemon("d", |ctx| {
            assert_eq!(ctx.park(), Err(SimError::Shutdown));
            // Further blocking calls must also fail immediately.
            assert_eq!(ctx.delay(SimDuration::from_nanos(1)), Err(SimError::Shutdown));
        });
        sim.run().unwrap();
    }

    #[test]
    fn yield_now_interleaves_same_time_processes() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sim = Sim::new();
        for name in ["a", "b"] {
            let log = log.clone();
            sim.spawn(name, move |ctx| {
                for i in 0..3 {
                    log.lock().push(format!("{name}{i}"));
                    ctx.yield_now().unwrap();
                }
            });
        }
        sim.run().unwrap();
        let got = log.lock().clone();
        assert_eq!(got, vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn abort_run_returns_the_structured_error() {
        let sim = Sim::new();
        sim.spawn("stuck", |ctx| {
            // Would be a deadlock — but the abort below must win.
            let _ = ctx.park();
        });
        sim.spawn("aborter", |ctx| {
            ctx.delay(SimDuration::from_nanos(5)).unwrap();
            let e = ctx.abort_run(RunError::Exhausted { what: "t0".into(), attempts: 4 });
            assert_eq!(e, SimError::Shutdown);
        });
        match sim.run() {
            Err(RunError::Exhausted { what, attempts }) => {
                assert_eq!(what, "t0");
                assert_eq!(attempts, 4);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn first_abort_wins() {
        let sim = Sim::new();
        for i in 0..3u32 {
            sim.spawn(format!("a{i}"), move |ctx| {
                ctx.delay(SimDuration::from_nanos(i as u64 + 1)).unwrap();
                let _ = ctx.abort_run(RunError::Exhausted { what: format!("t{i}"), attempts: i });
            });
        }
        match sim.run() {
            Err(RunError::Exhausted { what, .. }) => assert_eq!(what, "t0"),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn determinism_two_identical_runs_match() {
        fn run_once() -> (u64, u64) {
            let sim = Sim::new();
            for i in 0..20u64 {
                sim.spawn(format!("p{i}"), move |ctx| {
                    for j in 0..10u64 {
                        ctx.delay(SimDuration::from_nanos((i * 7 + j * 13) % 29 + 1)).unwrap();
                    }
                });
            }
            let r = sim.run().unwrap();
            (r.end_time.as_nanos(), r.events)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn many_processes_complete() {
        let counter = Arc::new(AtomicUsize::new(0));
        let sim = Sim::new();
        for i in 0..200 {
            let c = counter.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                ctx.delay(SimDuration::from_nanos(i as u64)).unwrap();
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(report.processes, 200);
    }
}
