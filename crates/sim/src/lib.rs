//! # ompss-sim — deterministic discrete-event simulation engine
//!
//! The substrate under the whole OmpSs reproduction. The original
//! Nanos++ runtime (Bueno et al., IPPS 2012) ran its worker threads, GPU
//! manager threads and cluster communication thread on real hardware;
//! here every one of those agents is a *simulation process* scheduled
//! over a virtual clock, so that:
//!
//! * experiments are **deterministic and reproducible** — identical
//!   configurations produce identical schedules and makespans;
//! * hardware we don't have (Fermi-era GPUs, a QDR Infiniband cluster)
//!   is modelled by charging virtual time for transfers and kernels
//!   while the *logic* of the runtime (dependence tracking, scheduling,
//!   caching, message protocols) executes for real.
//!
//! ## Quick tour
//!
//! ```
//! use ompss_sim::{Channel, Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let jobs: Channel<u32> = Channel::new();
//!
//! // A daemon service loop, torn down automatically when the sim drains.
//! let rx = jobs.clone();
//! sim.spawn_daemon("worker", move |ctx| {
//!     while let Ok(job) = rx.recv(&ctx) {
//!         // charge `job` ms of virtual time per job
//!         ctx.delay(SimDuration::from_millis(job as u64)).unwrap();
//!     }
//! });
//!
//! let tx = jobs.clone();
//! sim.spawn("main", move |ctx| {
//!     for j in [1u32, 2, 3] {
//!         tx.send(&ctx, j);
//!     }
//! });
//!
//! let report = sim.run().unwrap();
//! assert_eq!(report.end_time.as_nanos(), 6_000_000); // 1+2+3 ms, serialised
//! ```

#![warn(missing_docs)]

mod engine;
mod error;
mod fault;
mod queue;
mod sync;
mod time;

pub use engine::{Ctx, Pid, Sim};
pub use error::{RunError, RunReport, SimError, SimResult};
pub use fault::{DeviceFuse, FaultClass, FaultPlan, FaultStats, FAULT_CLASSES};
pub use queue::Channel;
pub use sync::{Bell, Latch, Semaphore, Signal};
pub use time::{SimDuration, SimTime};
