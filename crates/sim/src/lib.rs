//! # ompss-sim — deterministic discrete-event simulation engine
//!
//! The substrate under the whole OmpSs reproduction. The original
//! Nanos++ runtime (Bueno et al., IPPS 2012) ran its worker threads, GPU
//! manager threads and cluster communication thread on real hardware;
//! here every one of those agents is a *simulation process* — a
//! stackless `async` task polled over a virtual clock — so that:
//!
//! * experiments are **deterministic and reproducible** — identical
//!   configurations produce identical schedules and makespans;
//! * hardware we don't have (Fermi-era GPUs, a QDR Infiniband cluster)
//!   is modelled by charging virtual time for transfers and kernels
//!   while the *logic* of the runtime (dependence tracking, scheduling,
//!   caching, message protocols) executes for real;
//! * a process costs one heap allocation, not an OS thread — a
//!   thousand-node cluster's worth of workers, device managers and
//!   message pumps is just a vector of futures.
//!
//! ## Quick tour
//!
//! ```
//! use ompss_sim::{delay, Channel, Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let jobs: Channel<u32> = Channel::new();
//!
//! // A daemon service loop, torn down automatically when the sim drains.
//! let rx = jobs.clone();
//! sim.process("worker").daemon().spawn(async move {
//!     while let Ok(job) = rx.recv().await {
//!         // charge `job` ms of virtual time per job
//!         delay(SimDuration::from_millis(job as u64)).await.unwrap();
//!     }
//! });
//!
//! let tx = jobs.clone();
//! sim.spawn("main", async move {
//!     for j in [1u32, 2, 3] {
//!         tx.send(j);
//!     }
//! });
//!
//! let report = sim.run().unwrap();
//! assert_eq!(report.end_time.as_nanos(), 6_000_000); // 1+2+3 ms, serialised
//! ```
//!
//! Inside an `async` process body the current task is ambient: free
//! functions [`now`], [`pid`], [`delay`], [`yield_now`], [`spawn`],
//! [`process`] and [`abort_run`] resolve it from the running executor,
//! so no context handle is threaded through call chains.

#![warn(missing_docs)]

mod backoff;
pub mod defects;
mod engine;
mod error;
mod fault;
mod queue;
mod sync;
mod time;

pub use backoff::Backoff;
pub use engine::{
    abort_run, delay, install_tie_break, mc_resource_id, mc_touch, now, pid, process, spawn,
    yield_now, Delay, Pid, ProcName, ProcessBuilder, ProcessExit, Sim, StepFootprint, TieBreak,
};
pub use error::{ProcState, RunError, RunReport, SimError, SimResult};
pub use fault::{DeviceFuse, FaultClass, FaultPlan, FaultStats, FAULT_CLASSES};
pub use queue::Channel;
pub use sync::{Bell, Latch, Semaphore, Signal};
pub use time::{SimDuration, SimTime};
