//! Deterministic exponential backoff.
//!
//! Two very different retry loops in this workspace share one shape: a
//! bounded number of attempts with a doubling wait between them. The
//! runtime's ack/retransmit protocol (`ompss-runtime::recover`) waits
//! in *virtual* time between retransmissions of a cluster message, and
//! the `ompss-serve` daemon waits in *host* time between re-runs of a
//! retryable job. [`Backoff`] is the schedule both use: an iterator of
//! [`SimDuration`]s, fully determined by its parameters — no jitter, no
//! clocks — so a retry sequence is reproducible from its configuration
//! alone, in virtual time or mapped onto host time.

use crate::time::SimDuration;

/// A bounded, deterministic sequence of retry waits: `base`, `base×2`,
/// `base×4`, … for `attempts` steps, optionally clamped to a ceiling.
///
/// ```
/// use ompss_sim::{Backoff, SimDuration};
///
/// let waits: Vec<u64> = Backoff::exponential(SimDuration::from_micros(10), 4)
///     .map(|d| d.as_nanos())
///     .collect();
/// assert_eq!(waits, vec![10_000, 20_000, 40_000, 80_000]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    next: SimDuration,
    cap: Option<SimDuration>,
    remaining: u32,
}

impl Backoff {
    /// A doubling schedule starting at `base`, yielding `attempts`
    /// waits. `attempts` of zero yields an empty schedule (no retries).
    pub fn exponential(base: SimDuration, attempts: u32) -> Backoff {
        Backoff { next: base, cap: None, remaining: attempts }
    }

    /// Clamp every yielded wait to at most `cap` (the schedule still
    /// terminates after its configured attempt count).
    pub fn capped(mut self, cap: SimDuration) -> Backoff {
        self.cap = Some(cap);
        self
    }

    /// Waits left in the schedule.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }
}

impl Iterator for Backoff {
    type Item = SimDuration;

    fn next(&mut self) -> Option<SimDuration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut wait = self.next;
        if let Some(cap) = self.cap {
            if wait > cap {
                wait = cap;
            }
        }
        // Saturate rather than overflow on absurd attempt counts; the
        // cap (if any) keeps the yielded value sane either way.
        self.next = SimDuration::from_nanos(self.next.as_nanos().saturating_mul(2));
        Some(wait)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_per_attempt() {
        let waits: Vec<u64> =
            Backoff::exponential(SimDuration::from_nanos(3), 5).map(|d| d.as_nanos()).collect();
        assert_eq!(waits, vec![3, 6, 12, 24, 48]);
    }

    #[test]
    fn zero_attempts_is_empty() {
        assert_eq!(Backoff::exponential(SimDuration::from_micros(1), 0).count(), 0);
    }

    #[test]
    fn cap_clamps_late_waits() {
        let waits: Vec<u64> = Backoff::exponential(SimDuration::from_nanos(10), 6)
            .capped(SimDuration::from_nanos(35))
            .map(|d| d.as_nanos())
            .collect();
        assert_eq!(waits, vec![10, 20, 35, 35, 35, 35]);
    }

    #[test]
    fn schedule_is_reproducible() {
        let a: Vec<_> = Backoff::exponential(SimDuration::from_micros(7), 8).collect();
        let b: Vec<_> = Backoff::exponential(SimDuration::from_micros(7), 8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn remaining_counts_down() {
        let mut b = Backoff::exponential(SimDuration::from_nanos(1), 2);
        assert_eq!(b.remaining(), 2);
        b.next();
        assert_eq!(b.remaining(), 1);
        b.next();
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.next(), None);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut b = Backoff::exponential(SimDuration::from_nanos(u64::MAX / 2 + 1), 3);
        b.next();
        assert_eq!(b.next(), Some(SimDuration::from_nanos(u64::MAX)));
        assert_eq!(b.next(), Some(SimDuration::from_nanos(u64::MAX)));
    }
}
