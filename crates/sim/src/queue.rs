//! FIFO channels between simulation processes.
//!
//! [`Channel`] is an unbounded multi-producer multi-consumer queue with
//! deterministic FIFO delivery: items are received in send order, and
//! blocked receivers are served in the order they blocked. `send` never
//! blocks (the modelled queues — ready-task pools, message inboxes — are
//! unbounded in Nanos++ too); `recv().await` parks the calling process
//! until an item arrives.

use std::collections::VecDeque;
use std::future::Future;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{mc_resource_id, mc_touch, park_while, with_current_shared, Pid};
use crate::error::{SimError, SimResult};

struct Inner<T> {
    items: VecDeque<T>,
    waiters: VecDeque<Pid>,
    /// Items handed directly to a woken receiver. When `send` finds a
    /// parked waiter it moves the item here instead of through `items`,
    /// so the receiver's wake path is a guaranteed O(1) claim — it can
    /// never lose its item to another consumer and re-park. A pid
    /// appears at most once (a parked process cannot call `recv` again).
    handoff: Vec<(Pid, T)>,
    closed: bool,
}

/// An unbounded MPMC FIFO channel for simulation processes.
///
/// Clones share the same queue.
pub struct Channel<T> {
    inner: Arc<Mutex<Inner<T>>>,
    /// Stable resource id for the model checker's independence oracle.
    id: u64,
}

impl<T> Clone for Channel<T> {
    fn clone(&self) -> Self {
        Channel { inner: self.inner.clone(), id: self.id }
    }
}

impl<T> Default for Channel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Channel<T> {
    /// Create an empty channel.
    pub fn new() -> Self {
        Channel {
            inner: Arc::new(Mutex::new(Inner {
                items: VecDeque::new(),
                waiters: VecDeque::new(),
                handoff: Vec::new(),
                closed: false,
            })),
            id: mc_resource_id(),
        }
    }

    /// Enqueue an item. If a receiver is parked, the oldest one is woken
    /// at the current virtual time. Never blocks.
    pub fn send(&self, item: T) {
        mc_touch(self.id);
        let wake = {
            let mut inner = self.inner.lock();
            match inner.waiters.pop_front() {
                Some(pid) => {
                    inner.handoff.push((pid, item));
                    Some(pid)
                }
                None => {
                    inner.items.push_back(item);
                    None
                }
            }
        };
        if let Some(pid) = wake {
            with_current_shared(|s| s.schedule_wake_current_epoch(pid, s.now()));
        }
    }

    /// Dequeue an item, parking until one is available.
    ///
    /// Resolves to [`SimError::Closed`] if the channel is closed and
    /// empty, or [`SimError::Shutdown`] during simulation teardown.
    pub fn recv(&self) -> impl Future<Output = SimResult<T>> + '_ {
        let mut registered = false;
        park_while(move |_, pid| {
            mc_touch(self.id);
            let mut inner = self.inner.lock();
            if let Some(i) = inner.handoff.iter().position(|(p, _)| *p == pid) {
                return Some(Ok(inner.handoff.swap_remove(i).1));
            }
            if let Some(v) = inner.items.pop_front() {
                return Some(Ok(v));
            }
            if inner.closed {
                return Some(Err(SimError::Closed));
            }
            if !registered {
                inner.waiters.push_back(pid);
                registered = true;
            }
            None
        })
    }

    /// Dequeue an item if one is immediately available.
    pub fn try_recv(&self) -> Option<T> {
        mc_touch(self.id);
        self.inner.lock().items.pop_front()
    }

    /// Number of queued items, including those already handed to a woken
    /// receiver that has not resumed yet (they were externally observable
    /// as "queued" before the handoff optimisation, and must stay so).
    pub fn len(&self) -> usize {
        mc_touch(self.id);
        let inner = self.inner.lock();
        inner.items.len() + inner.handoff.len()
    }

    /// True if no items are queued (see [`Channel::len`]).
    pub fn is_empty(&self) -> bool {
        mc_touch(self.id);
        let inner = self.inner.lock();
        inner.items.is_empty() && inner.handoff.is_empty()
    }

    /// Close the channel: parked and future receivers get
    /// [`SimError::Closed`] once the queue is empty. Items already queued
    /// are still delivered.
    pub fn close(&self) {
        mc_touch(self.id);
        let wakes: Vec<Pid> = {
            let mut inner = self.inner.lock();
            inner.closed = true;
            inner.waiters.drain(..).collect()
        };
        if !wakes.is_empty() {
            with_current_shared(|s| {
                for pid in wakes {
                    s.schedule_wake_current_epoch(pid, s.now());
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{delay, now, Sim, SimDuration};
    use parking_lot::Mutex as PMutex;

    #[test]
    fn send_then_recv_same_process() {
        let sim = Sim::new();
        let ch = Channel::new();
        let c = ch.clone();
        sim.spawn("p", async move {
            c.send(41);
            c.send(42);
            assert_eq!(c.recv().await.unwrap(), 41);
            assert_eq!(c.recv().await.unwrap(), 42);
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_blocks_until_send() {
        let sim = Sim::new();
        let ch: Channel<u64> = Channel::new();
        let (c1, c2) = (ch.clone(), ch.clone());
        sim.spawn("consumer", async move {
            let v = c1.recv().await.unwrap();
            assert_eq!(v, 7);
            assert_eq!(now().as_nanos(), 50, "woken at the producer's send time");
        });
        sim.spawn("producer", async move {
            delay(SimDuration::from_nanos(50)).await.unwrap();
            c2.send(7);
        });
        sim.run().unwrap();
    }

    #[test]
    fn fifo_order_preserved() {
        let sim = Sim::new();
        let ch = Channel::new();
        let got = Arc::new(PMutex::new(Vec::new()));
        let (c1, c2, g) = (ch.clone(), ch.clone(), got.clone());
        sim.spawn("producer", async move {
            for i in 0..100 {
                c1.send(i);
            }
        });
        sim.spawn("consumer", async move {
            for _ in 0..100 {
                let v = c2.recv().await.unwrap();
                g.lock().push(v);
            }
        });
        sim.run().unwrap();
        assert_eq!(*got.lock(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_receivers_served_in_block_order() {
        let sim = Sim::new();
        let ch: Channel<u32> = Channel::new();
        let got = Arc::new(PMutex::new(Vec::new()));
        for name in ["r1", "r2"] {
            let c = ch.clone();
            let g = got.clone();
            sim.spawn(name, async move {
                let v = c.recv().await.unwrap();
                g.lock().push((name, v));
            });
        }
        let c = ch.clone();
        sim.spawn("sender", async move {
            delay(SimDuration::from_nanos(10)).await.unwrap();
            c.send(100);
            c.send(200);
        });
        sim.run().unwrap();
        assert_eq!(*got.lock(), vec![("r1", 100), ("r2", 200)]);
    }

    #[test]
    fn try_recv_does_not_block() {
        let sim = Sim::new();
        let ch: Channel<u32> = Channel::new();
        let c = ch.clone();
        sim.spawn("p", async move {
            assert_eq!(c.try_recv(), None);
            c.send(1);
            assert_eq!(c.try_recv(), Some(1));
        });
        sim.run().unwrap();
    }

    #[test]
    fn close_wakes_blocked_receiver_with_closed() {
        let sim = Sim::new();
        let ch: Channel<u32> = Channel::new();
        let (c1, c2) = (ch.clone(), ch.clone());
        sim.spawn("consumer", async move {
            assert_eq!(c1.recv().await, Err(SimError::Closed));
        });
        sim.spawn("closer", async move {
            delay(SimDuration::from_nanos(5)).await.unwrap();
            c2.close();
        });
        sim.run().unwrap();
    }

    #[test]
    fn close_still_delivers_queued_items() {
        let sim = Sim::new();
        let ch = Channel::new();
        let c = ch.clone();
        sim.spawn("p", async move {
            c.send(9);
            c.close();
            assert_eq!(c.recv().await.unwrap(), 9);
            assert_eq!(c.recv().await, Err(SimError::Closed));
        });
        sim.run().unwrap();
    }

    #[test]
    fn daemon_worker_loop_drains_then_shuts_down() {
        let sim = Sim::new();
        let ch: Channel<u32> = Channel::new();
        let done = Arc::new(PMutex::new(0u32));
        let (c1, c2, d) = (ch.clone(), ch.clone(), done.clone());
        sim.process("worker").daemon().spawn(async move {
            while let Ok(v) = c1.recv().await {
                *d.lock() += v;
            }
        });
        sim.spawn("main", async move {
            for _ in 0..5 {
                c2.send(2);
                delay(SimDuration::from_nanos(1)).await.unwrap();
            }
        });
        sim.run().unwrap();
        assert_eq!(*done.lock(), 10);
    }
}
