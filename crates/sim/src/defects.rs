//! Seeded defect corpus for the model checker's self-test.
//!
//! `ompss-mc` claims to catch executor bugs, lost wakeups and
//! under-declared dependences. The only way to trust that claim is to
//! plant each bug class and watch the checker find it. This module is
//! the arming switch: known-bad mutations stay in the shipping source
//! behind `#[cfg(mc_defects)]` (compiled out of normal builds entirely)
//! and are switched on per-thread by name, so the defect tests in
//! `crates/mc/tests/defects.rs` can arm exactly one at a time.
//!
//! Build with `RUSTFLAGS="--cfg mc_defects"` to compile the corpus in.
//!
//! Defect names:
//! - `"epoch"` — the kernel dispatch path skips the stale-epoch check,
//!   resuming processes on superseded events (spurious wakeups). Caught
//!   by the checker's kernel-invariant oracle.
//! - `"wakeup"` — [`crate::sync::Signal::set`] drops the set when no
//!   waiter is registered yet: the classic lost-wakeup race, visible
//!   only in orderings where the setter runs before the waiter parks.
//!   Caught by the deadlock oracle with a replayable trace.
//! - `"stream"` — the STREAM app's `scale` task declares its `c`
//!   operand with the wrong clause direction (see
//!   `crates/apps/src/stream/ompss.rs`). Caught by the clause/race
//!   oracle (`ompss-verify` findings).

#[cfg(mc_defects)]
use std::cell::Cell;

#[cfg(mc_defects)]
thread_local! {
    static ARMED: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// Arm one named defect on this thread. No-op unless the workspace was
/// built with `--cfg mc_defects`.
pub fn arm(which: &'static str) {
    #[cfg(mc_defects)]
    ARMED.with(|a| a.set(Some(which)));
    #[cfg(not(mc_defects))]
    let _ = which;
}

/// Disarm whatever defect is armed on this thread.
pub fn disarm() {
    #[cfg(mc_defects)]
    ARMED.with(|a| a.set(None));
}

/// True when defect `which` is armed on this thread. Compiles to a
/// constant `false` (and dead-code-eliminates its callers' defect
/// branches) unless built with `--cfg mc_defects`.
#[inline]
pub fn armed(which: &str) -> bool {
    #[cfg(mc_defects)]
    {
        ARMED.with(|a| a.get()).is_some_and(|name| name == which)
    }
    #[cfg(not(mc_defects))]
    {
        let _ = which;
        false
    }
}
