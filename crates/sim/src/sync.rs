//! Synchronization primitives for simulation processes: counting
//! semaphores (the building block of every modelled hardware resource —
//! PCIe links, DMA engines, NIC ports), one-shot broadcast signals
//! (completion events), and counting latches (taskwait).
//!
//! Blocking operations (`acquire`, `wait`, `wait_zero`, …) return
//! futures; waking operations (`release`, `set`, `done`, `ring`) are
//! plain synchronous calls that schedule the waiters' resume events.

use std::collections::VecDeque;
use std::future::Future;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{mc_resource_id, mc_touch, park_while, with_current, with_current_shared, Pid};
use crate::error::SimResult;

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemInner {
    permits: u64,
    /// FIFO of (pid, permits wanted) — strict arrival-order fairness, so
    /// modelled hardware queues (a PCIe link, a copy engine) serve
    /// requests deterministically and without starvation.
    waiters: VecDeque<(Pid, u64)>,
}

/// A counting semaphore with FIFO fairness.
///
/// Modelled hardware is a semaphore: a link with one transfer in flight
/// is `Semaphore::new(1)`; a GPU with two copy engines is
/// `Semaphore::new(2)`. `acquire + delay + release` around an operation
/// serialises contending processes and accumulates queueing time on the
/// virtual clock exactly like a busy device would.
pub struct Semaphore {
    inner: Arc<Mutex<SemInner>>,
    /// Stable resource id for the model checker's independence oracle.
    id: u64,
}

impl Clone for Semaphore {
    fn clone(&self) -> Self {
        Semaphore { inner: self.inner.clone(), id: self.id }
    }
}

impl Semaphore {
    /// Create a semaphore holding `permits` permits.
    pub fn new(permits: u64) -> Self {
        Semaphore {
            inner: Arc::new(Mutex::new(SemInner { permits, waiters: VecDeque::new() })),
            id: mc_resource_id(),
        }
    }

    /// Acquire one permit, parking until available.
    pub fn acquire(&self) -> impl Future<Output = SimResult<()>> + '_ {
        self.acquire_n(1)
    }

    /// Acquire `n` permits atomically, parking until available.
    ///
    /// FIFO: a large request at the head of the queue blocks later small
    /// requests (no barging), which keeps service order deterministic.
    pub fn acquire_n(&self, n: u64) -> impl Future<Output = SimResult<()>> + '_ {
        let mut registered = false;
        park_while(move |shared, pid| {
            mc_touch(self.id);
            let mut inner = self.inner.lock();
            let at_head = inner.waiters.front().map(|&(p, _)| p) == Some(pid);
            if inner.permits >= n
                && (!registered || at_head)
                && (registered || inner.waiters.is_empty())
            {
                if registered {
                    inner.waiters.pop_front();
                    // Wake the next head in case permits remain for it.
                    if let Some(&(next, want)) = inner.waiters.front() {
                        if inner.permits - n >= want {
                            shared.schedule_wake_current_epoch(next, shared.now());
                        }
                    }
                }
                inner.permits -= n;
                return Some(Ok(()));
            }
            if !registered {
                inner.waiters.push_back((pid, n));
                registered = true;
            }
            None
        })
    }

    /// Return one permit.
    pub fn release(&self) {
        self.release_n(1);
    }

    /// Return `n` permits and wake the head waiter if it can now proceed.
    pub fn release_n(&self, n: u64) {
        mc_touch(self.id);
        let wake = {
            let mut inner = self.inner.lock();
            inner.permits += n;
            match inner.waiters.front() {
                Some(&(pid, want)) if inner.permits >= want => Some(pid),
                _ => None,
            }
        };
        if let Some(pid) = wake {
            with_current_shared(|s| s.schedule_wake_current_epoch(pid, s.now()));
        }
    }

    /// Permits currently available.
    pub fn available(&self) -> u64 {
        mc_touch(self.id);
        self.inner.lock().permits
    }
}

// ---------------------------------------------------------------------------
// Signal
// ---------------------------------------------------------------------------

struct SignalInner {
    set: bool,
    waiters: Vec<Pid>,
}

/// A one-shot broadcast event: any number of processes [`wait`](Signal::wait)
/// until some process calls [`set`](Signal::set). Waiting on an
/// already-set signal returns immediately. Used for completion
/// notifications (a transfer finished, a kernel retired, a remote task
/// acknowledged).
pub struct Signal {
    inner: Arc<Mutex<SignalInner>>,
    /// Stable resource id for the model checker's independence oracle.
    id: u64,
}

impl Clone for Signal {
    fn clone(&self) -> Self {
        Signal { inner: self.inner.clone(), id: self.id }
    }
}

impl Default for Signal {
    fn default() -> Self {
        Self::new()
    }
}

impl Signal {
    /// Create an unset signal.
    pub fn new() -> Self {
        Signal {
            inner: Arc::new(Mutex::new(SignalInner { set: false, waiters: Vec::new() })),
            id: mc_resource_id(),
        }
    }

    /// Set the signal and wake every waiter. Idempotent.
    pub fn set(&self) {
        mc_touch(self.id);
        let wakes: Vec<Pid> = {
            let mut inner = self.inner.lock();
            if inner.set {
                return;
            }
            if crate::defects::armed("wakeup") && inner.waiters.is_empty() {
                // Seeded defect: drop the set when nobody is registered
                // yet — the classic lost-wakeup race. Only orderings
                // where the setter runs before the waiter parks hang.
                return;
            }
            inner.set = true;
            std::mem::take(&mut inner.waiters)
        };
        if !wakes.is_empty() {
            with_current_shared(|s| {
                for pid in wakes {
                    s.schedule_wake_current_epoch(pid, s.now());
                }
            });
        }
    }

    /// True if the signal has been set.
    pub fn is_set(&self) -> bool {
        mc_touch(self.id);
        self.inner.lock().set
    }

    /// Park until the signal is set.
    pub fn wait(&self) -> impl Future<Output = SimResult<()>> + '_ {
        park_while(move |_, pid| {
            mc_touch(self.id);
            let mut inner = self.inner.lock();
            if inner.set {
                return Some(Ok(()));
            }
            inner.waiters.push(pid);
            None
        })
    }

    /// Park until the signal is set or `timeout` elapses. Resolves to
    /// `Ok(true)` if the signal was set, `Ok(false)` on timeout. The
    /// timeout path deregisters this process from the waiter list, so a
    /// later `set` cannot deliver a stale wakeup into whatever the
    /// process blocks on next.
    pub fn wait_timeout(
        &self,
        timeout: crate::SimDuration,
    ) -> impl Future<Output = SimResult<bool>> + '_ {
        let mut deadline = None;
        park_while(move |shared, pid| {
            mc_touch(self.id);
            let deadline = *deadline.get_or_insert_with(|| shared.now() + timeout);
            let mut inner = self.inner.lock();
            if inner.set {
                inner.waiters.retain(|&p| p != pid);
                return Some(Ok(true));
            }
            if shared.now() >= deadline {
                inner.waiters.retain(|&p| p != pid);
                return Some(Ok(false));
            }
            inner.waiters.push(pid);
            drop(inner);
            // Own wakeup at the deadline; a `set` before then wakes us
            // earlier and the stale deadline event is epoch-invalidated.
            shared.schedule_wake_current_epoch(pid, deadline);
            None
        })
    }
}

// ---------------------------------------------------------------------------
// Latch
// ---------------------------------------------------------------------------

struct LatchInner {
    count: u64,
    waiters: Vec<Pid>,
}

/// A counting latch: `add` raises the count, `done` lowers it, and
/// [`wait_zero`](Latch::wait_zero) parks until it reaches zero.
///
/// This is the synchronization shape of OmpSs `taskwait`: the creating
/// task adds one per child and waits for the count to drain. Unlike a
/// one-shot signal the count may rise again after reaching zero (a
/// second `taskwait` region).
pub struct Latch {
    inner: Arc<Mutex<LatchInner>>,
    /// Stable resource id for the model checker's independence oracle.
    id: u64,
}

impl Clone for Latch {
    fn clone(&self) -> Self {
        Latch { inner: self.inner.clone(), id: self.id }
    }
}

impl Default for Latch {
    fn default() -> Self {
        Self::new()
    }
}

impl Latch {
    /// Create a latch with count zero.
    pub fn new() -> Self {
        Latch {
            inner: Arc::new(Mutex::new(LatchInner { count: 0, waiters: Vec::new() })),
            id: mc_resource_id(),
        }
    }

    /// Raise the count by `n`.
    pub fn add(&self, n: u64) {
        mc_touch(self.id);
        self.inner.lock().count += n;
    }

    /// Lower the count by one; at zero, wake all waiters.
    pub fn done(&self) {
        mc_touch(self.id);
        let wakes: Vec<Pid> = {
            let mut inner = self.inner.lock();
            assert!(inner.count > 0, "Latch::done without matching add");
            inner.count -= 1;
            if inner.count == 0 {
                std::mem::take(&mut inner.waiters)
            } else {
                Vec::new()
            }
        };
        if !wakes.is_empty() {
            with_current_shared(|s| {
                for pid in wakes {
                    s.schedule_wake_current_epoch(pid, s.now());
                }
            });
        }
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        mc_touch(self.id);
        self.inner.lock().count
    }

    /// Park until the count reaches zero. Returns immediately if already
    /// zero.
    pub fn wait_zero(&self) -> impl Future<Output = SimResult<()>> + '_ {
        park_while(move |_, pid| {
            mc_touch(self.id);
            let mut inner = self.inner.lock();
            if inner.count == 0 {
                return Some(Ok(()));
            }
            inner.waiters.push(pid);
            None
        })
    }
}

// ---------------------------------------------------------------------------
// Bell
// ---------------------------------------------------------------------------

struct BellInner {
    waiters: Vec<Pid>,
}

/// A reusable broadcast wakeup — the shape of a condition variable.
///
/// Idle workers [`wait`](Bell::wait) on the bell after finding their
/// queues empty; producers [`ring`](Bell::ring) it after enqueueing
/// work, waking *all* current waiters to re-check their queues. Because
/// the simulation is sequential (a process cannot be preempted between
/// checking a queue and parking on the bell), the classic lost-wakeup
/// race cannot occur.
pub struct Bell {
    inner: Arc<Mutex<BellInner>>,
    /// Stable resource id for the model checker's independence oracle.
    id: u64,
}

impl Clone for Bell {
    fn clone(&self) -> Self {
        Bell { inner: self.inner.clone(), id: self.id }
    }
}

impl Default for Bell {
    fn default() -> Self {
        Self::new()
    }
}

impl Bell {
    /// Create a bell with no waiters.
    pub fn new() -> Self {
        Bell {
            inner: Arc::new(Mutex::new(BellInner { waiters: Vec::new() })),
            id: mc_resource_id(),
        }
    }

    /// Park until the next ring. Unconditional: registration happens on
    /// the first poll, and any valid wakeup (the ring) completes it.
    pub fn wait(&self) -> impl Future<Output = SimResult<()>> + '_ {
        let mut registered = false;
        park_while(move |_, pid| {
            mc_touch(self.id);
            if registered {
                return Some(Ok(()));
            }
            self.inner.lock().waiters.push(pid);
            registered = true;
            None
        })
    }

    /// Wake every process currently waiting.
    pub fn ring(&self) {
        mc_touch(self.id);
        let wakes: Vec<Pid> = std::mem::take(&mut self.inner.lock().waiters);
        if !wakes.is_empty() {
            with_current(|shared, _| {
                for pid in wakes {
                    shared.schedule_wake_current_epoch(pid, shared.now());
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{delay, now, spawn, Sim, SimDuration};
    use parking_lot::Mutex as PMutex;

    #[test]
    fn semaphore_serialises_contenders() {
        // Two processes each hold a 1-permit semaphore for 10ns; the
        // second must finish at 20ns.
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let ends = Arc::new(PMutex::new(Vec::new()));
        for name in ["a", "b"] {
            let s = sem.clone();
            let e = ends.clone();
            sim.spawn(name, async move {
                s.acquire().await.unwrap();
                delay(SimDuration::from_nanos(10)).await.unwrap();
                s.release();
                e.lock().push((name, now().as_nanos()));
            });
        }
        sim.run().unwrap();
        assert_eq!(*ends.lock(), vec![("a", 10), ("b", 20)]);
    }

    #[test]
    fn semaphore_two_permits_run_concurrently() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let ends = Arc::new(PMutex::new(Vec::new()));
        for name in ["a", "b"] {
            let s = sem.clone();
            let e = ends.clone();
            sim.spawn(name, async move {
                s.acquire().await.unwrap();
                delay(SimDuration::from_nanos(10)).await.unwrap();
                s.release();
                e.lock().push(now().as_nanos());
            });
        }
        sim.run().unwrap();
        assert_eq!(*ends.lock(), vec![10, 10]);
    }

    #[test]
    fn semaphore_fifo_no_barging() {
        // Queue: big wants 2 permits, then small wants 1. Releasing one
        // permit (total available 1) must NOT let small barge past big.
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let order = Arc::new(PMutex::new(Vec::new()));
        {
            let s = sem.clone();
            sim.spawn("holder", async move {
                s.acquire_n(2).await.unwrap();
                delay(SimDuration::from_nanos(10)).await.unwrap();
                s.release(); // one back -> big still can't run
                delay(SimDuration::from_nanos(10)).await.unwrap();
                s.release(); // second back -> big runs
            });
        }
        {
            let s = sem.clone();
            let o = order.clone();
            sim.spawn("big", async move {
                delay(SimDuration::from_nanos(1)).await.unwrap();
                s.acquire_n(2).await.unwrap();
                o.lock().push(("big", now().as_nanos()));
                s.release_n(2);
            });
        }
        {
            let s = sem.clone();
            let o = order.clone();
            sim.spawn("small", async move {
                delay(SimDuration::from_nanos(2)).await.unwrap();
                s.acquire().await.unwrap();
                o.lock().push(("small", now().as_nanos()));
                s.release();
            });
        }
        sim.run().unwrap();
        let got = order.lock().clone();
        assert_eq!(got[0].0, "big", "FIFO order violated: {got:?}");
        assert_eq!(got[0].1, 20);
        assert_eq!(got[1].0, "small");
    }

    #[test]
    fn semaphore_available_tracks_permits() {
        let sim = Sim::new();
        let sem = Semaphore::new(3);
        let s = sem.clone();
        sim.spawn("p", async move {
            assert_eq!(s.available(), 3);
            s.acquire_n(2).await.unwrap();
            assert_eq!(s.available(), 1);
            s.release_n(2);
            assert_eq!(s.available(), 3);
        });
        sim.run().unwrap();
    }

    #[test]
    fn signal_wakes_all_waiters() {
        let sim = Sim::new();
        let sig = Signal::new();
        let done = Arc::new(PMutex::new(Vec::new()));
        for name in ["w1", "w2", "w3"] {
            let s = sig.clone();
            let d = done.clone();
            sim.spawn(name, async move {
                s.wait().await.unwrap();
                d.lock().push((name, now().as_nanos()));
            });
        }
        let s = sig.clone();
        sim.spawn("setter", async move {
            delay(SimDuration::from_nanos(30)).await.unwrap();
            s.set();
        });
        sim.run().unwrap();
        let got = done.lock().clone();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|&(_, t)| t == 30));
    }

    #[test]
    fn signal_already_set_returns_immediately() {
        let sim = Sim::new();
        let sig = Signal::new();
        let s = sig.clone();
        sim.spawn("p", async move {
            s.set();
            assert!(s.is_set());
            s.wait().await.unwrap();
            assert_eq!(now().as_nanos(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn signal_wait_timeout_set_and_expiry() {
        let sim = Sim::new();
        let sig = Signal::new();
        {
            let s = sig.clone();
            sim.spawn("waiter", async move {
                // First wait times out at 10ns (set comes at 25ns).
                assert!(!s.wait_timeout(SimDuration::from_nanos(10)).await.unwrap());
                assert_eq!(now().as_nanos(), 10);
                // Second wait sees the set at 25ns, before its deadline.
                assert!(s.wait_timeout(SimDuration::from_nanos(100)).await.unwrap());
                assert_eq!(now().as_nanos(), 25);
                // A later delay must not be cut short by any stale wake.
                delay(SimDuration::from_nanos(500)).await.unwrap();
                assert_eq!(now().as_nanos(), 525);
            });
        }
        let s = sig.clone();
        sim.spawn("setter", async move {
            delay(SimDuration::from_nanos(25)).await.unwrap();
            s.set();
        });
        sim.run().unwrap();
    }

    #[test]
    fn signal_wait_timeout_deregisters_on_expiry() {
        // After a timeout, a set() must find no stale waiter entry.
        let sim = Sim::new();
        let sig = Signal::new();
        let s = sig.clone();
        sim.spawn("p", async move {
            assert!(!s.wait_timeout(SimDuration::from_nanos(5)).await.unwrap());
            s.set(); // would panic/misfire on a stale self-wake
            delay(SimDuration::from_nanos(50)).await.unwrap();
            assert_eq!(now().as_nanos(), 55);
        });
        sim.run().unwrap();
    }

    #[test]
    fn latch_waits_for_all_children() {
        let sim = Sim::new();
        let latch = Latch::new();
        latch.add(3);
        for i in 1..=3u64 {
            let l = latch.clone();
            sim.spawn(format!("child{i}"), async move {
                delay(SimDuration::from_nanos(i * 10)).await.unwrap();
                l.done();
            });
        }
        let l = latch.clone();
        sim.spawn("parent", async move {
            l.wait_zero().await.unwrap();
            assert_eq!(now().as_nanos(), 30);
        });
        sim.run().unwrap();
    }

    #[test]
    fn latch_reusable_across_regions() {
        let sim = Sim::new();
        let latch = Latch::new();
        let l = latch.clone();
        sim.spawn("parent", async move {
            // Region 1.
            l.add(1);
            let l2 = l.clone();
            spawn("c1", async move {
                delay(SimDuration::from_nanos(5)).await.unwrap();
                l2.done();
            });
            l.wait_zero().await.unwrap();
            assert_eq!(now().as_nanos(), 5);
            // Region 2 raises the count again.
            l.add(1);
            let l3 = l.clone();
            spawn("c2", async move {
                delay(SimDuration::from_nanos(7)).await.unwrap();
                l3.done();
            });
            l.wait_zero().await.unwrap();
            assert_eq!(now().as_nanos(), 12);
        });
        sim.run().unwrap();
    }

    #[test]
    fn bell_wakes_all_waiters_and_is_reusable() {
        let sim = Sim::new();
        let bell = Bell::new();
        let wakeups = Arc::new(PMutex::new(Vec::new()));
        for name in ["w1", "w2"] {
            let b = bell.clone();
            let w = wakeups.clone();
            sim.spawn(name, async move {
                b.wait().await.unwrap();
                w.lock().push((name, now().as_nanos()));
                b.wait().await.unwrap();
                w.lock().push((name, now().as_nanos()));
            });
        }
        let b = bell.clone();
        sim.spawn("ringer", async move {
            delay(SimDuration::from_nanos(10)).await.unwrap();
            b.ring();
            delay(SimDuration::from_nanos(10)).await.unwrap();
            b.ring();
        });
        sim.run().unwrap();
        let got = wakeups.lock().clone();
        assert_eq!(got, vec![("w1", 10), ("w2", 10), ("w1", 20), ("w2", 20)]);
    }

    #[test]
    fn bell_ring_with_no_waiters_is_noop() {
        let sim = Sim::new();
        let bell = Bell::new();
        sim.spawn("p", async move { bell.ring() });
        sim.run().unwrap();
    }

    #[test]
    #[should_panic(expected = "Latch::done without matching add")]
    fn latch_underflow_panics() {
        let sim = Sim::new();
        let latch = Latch::new();
        sim.spawn("p", async move { latch.done() });
        // The panic is reported through RunError; re-panic for the test.
        if let Err(e) = sim.run() {
            panic!("{e}");
        }
    }
}
