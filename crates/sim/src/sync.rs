//! Synchronization primitives for simulation processes: counting
//! semaphores (the building block of every modelled hardware resource —
//! PCIe links, DMA engines, NIC ports), one-shot broadcast signals
//! (completion events), and counting latches (taskwait).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{Ctx, Pid};
use crate::error::SimResult;

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemInner {
    permits: u64,
    /// FIFO of (pid, permits wanted) — strict arrival-order fairness, so
    /// modelled hardware queues (a PCIe link, a copy engine) serve
    /// requests deterministically and without starvation.
    waiters: VecDeque<(Pid, u64)>,
}

/// A counting semaphore with FIFO fairness.
///
/// Modelled hardware is a semaphore: a link with one transfer in flight
/// is `Semaphore::new(1)`; a GPU with two copy engines is
/// `Semaphore::new(2)`. `acquire + delay + release` around an operation
/// serialises contending processes and accumulates queueing time on the
/// virtual clock exactly like a busy device would.
pub struct Semaphore {
    inner: Arc<Mutex<SemInner>>,
}

impl Clone for Semaphore {
    fn clone(&self) -> Self {
        Semaphore { inner: self.inner.clone() }
    }
}

impl Semaphore {
    /// Create a semaphore holding `permits` permits.
    pub fn new(permits: u64) -> Self {
        Semaphore { inner: Arc::new(Mutex::new(SemInner { permits, waiters: VecDeque::new() })) }
    }

    /// Acquire one permit, parking until available.
    pub fn acquire(&self, ctx: &Ctx) -> SimResult<()> {
        self.acquire_n(ctx, 1)
    }

    /// Acquire `n` permits atomically, parking until available.
    ///
    /// FIFO: a large request at the head of the queue blocks later small
    /// requests (no barging), which keeps service order deterministic.
    pub fn acquire_n(&self, ctx: &Ctx, n: u64) -> SimResult<()> {
        let mut registered = false;
        loop {
            {
                let mut inner = self.inner.lock();
                let at_head = inner.waiters.front().map(|&(pid, _)| pid) == Some(ctx.pid());
                if inner.permits >= n
                    && (!registered || at_head)
                    && (registered || inner.waiters.is_empty())
                {
                    if registered {
                        inner.waiters.pop_front();
                        // Wake the next head in case permits remain for it.
                        if let Some(&(next, want)) = inner.waiters.front() {
                            if inner.permits - n >= want {
                                ctx.shared().schedule_wake_current_epoch(next, ctx.now());
                            }
                        }
                    }
                    inner.permits -= n;
                    return Ok(());
                }
                if !registered {
                    inner.waiters.push_back((ctx.pid(), n));
                    registered = true;
                }
            }
            ctx.park()?;
        }
    }

    /// Return one permit.
    pub fn release(&self, ctx: &Ctx) {
        self.release_n(ctx, 1);
    }

    /// Return `n` permits and wake the head waiter if it can now proceed.
    pub fn release_n(&self, ctx: &Ctx, n: u64) {
        let wake = {
            let mut inner = self.inner.lock();
            inner.permits += n;
            match inner.waiters.front() {
                Some(&(pid, want)) if inner.permits >= want => Some(pid),
                _ => None,
            }
        };
        if let Some(pid) = wake {
            ctx.shared().schedule_wake_current_epoch(pid, ctx.now());
        }
    }

    /// Permits currently available.
    pub fn available(&self) -> u64 {
        self.inner.lock().permits
    }
}

// ---------------------------------------------------------------------------
// Signal
// ---------------------------------------------------------------------------

struct SignalInner {
    set: bool,
    waiters: Vec<Pid>,
}

/// A one-shot broadcast event: any number of processes [`wait`](Signal::wait)
/// until some process calls [`set`](Signal::set). Waiting on an
/// already-set signal returns immediately. Used for completion
/// notifications (a transfer finished, a kernel retired, a remote task
/// acknowledged).
pub struct Signal {
    inner: Arc<Mutex<SignalInner>>,
}

impl Clone for Signal {
    fn clone(&self) -> Self {
        Signal { inner: self.inner.clone() }
    }
}

impl Default for Signal {
    fn default() -> Self {
        Self::new()
    }
}

impl Signal {
    /// Create an unset signal.
    pub fn new() -> Self {
        Signal { inner: Arc::new(Mutex::new(SignalInner { set: false, waiters: Vec::new() })) }
    }

    /// Set the signal and wake every waiter. Idempotent.
    pub fn set(&self, ctx: &Ctx) {
        let wakes: Vec<Pid> = {
            let mut inner = self.inner.lock();
            if inner.set {
                return;
            }
            inner.set = true;
            std::mem::take(&mut inner.waiters)
        };
        for pid in wakes {
            ctx.shared().schedule_wake_current_epoch(pid, ctx.now());
        }
    }

    /// True if the signal has been set.
    pub fn is_set(&self) -> bool {
        self.inner.lock().set
    }

    /// Park until the signal is set.
    pub fn wait(&self, ctx: &Ctx) -> SimResult<()> {
        loop {
            {
                let mut inner = self.inner.lock();
                if inner.set {
                    return Ok(());
                }
                inner.waiters.push(ctx.pid());
            }
            ctx.park()?;
        }
    }

    /// Park until the signal is set or `timeout` elapses. Returns
    /// `Ok(true)` if the signal was set, `Ok(false)` on timeout. The
    /// timeout path deregisters this process from the waiter list, so a
    /// later `set` cannot deliver a stale wakeup into whatever the
    /// process blocks on next.
    pub fn wait_timeout(&self, ctx: &Ctx, timeout: crate::SimDuration) -> SimResult<bool> {
        let deadline = ctx.now() + timeout;
        loop {
            {
                let mut inner = self.inner.lock();
                if inner.set {
                    inner.waiters.retain(|&p| p != ctx.pid());
                    return Ok(true);
                }
                if ctx.now() >= deadline {
                    inner.waiters.retain(|&p| p != ctx.pid());
                    return Ok(false);
                }
                inner.waiters.push(ctx.pid());
            }
            // Own wakeup at the deadline; a `set` before then wakes us
            // earlier and the stale deadline event is epoch-invalidated.
            ctx.shared().schedule_wake_current_epoch(ctx.pid(), deadline);
            ctx.park()?;
        }
    }
}

// ---------------------------------------------------------------------------
// Latch
// ---------------------------------------------------------------------------

struct LatchInner {
    count: u64,
    waiters: Vec<Pid>,
}

/// A counting latch: `add` raises the count, `done` lowers it, and
/// [`wait_zero`](Latch::wait_zero) parks until it reaches zero.
///
/// This is the synchronization shape of OmpSs `taskwait`: the creating
/// task adds one per child and waits for the count to drain. Unlike a
/// one-shot signal the count may rise again after reaching zero (a
/// second `taskwait` region).
pub struct Latch {
    inner: Arc<Mutex<LatchInner>>,
}

impl Clone for Latch {
    fn clone(&self) -> Self {
        Latch { inner: self.inner.clone() }
    }
}

impl Default for Latch {
    fn default() -> Self {
        Self::new()
    }
}

impl Latch {
    /// Create a latch with count zero.
    pub fn new() -> Self {
        Latch { inner: Arc::new(Mutex::new(LatchInner { count: 0, waiters: Vec::new() })) }
    }

    /// Raise the count by `n`.
    pub fn add(&self, n: u64) {
        self.inner.lock().count += n;
    }

    /// Lower the count by one; at zero, wake all waiters.
    pub fn done(&self, ctx: &Ctx) {
        let wakes: Vec<Pid> = {
            let mut inner = self.inner.lock();
            assert!(inner.count > 0, "Latch::done without matching add");
            inner.count -= 1;
            if inner.count == 0 {
                std::mem::take(&mut inner.waiters)
            } else {
                Vec::new()
            }
        };
        for pid in wakes {
            ctx.shared().schedule_wake_current_epoch(pid, ctx.now());
        }
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Park until the count reaches zero. Returns immediately if already
    /// zero.
    pub fn wait_zero(&self, ctx: &Ctx) -> SimResult<()> {
        loop {
            {
                let mut inner = self.inner.lock();
                if inner.count == 0 {
                    return Ok(());
                }
                inner.waiters.push(ctx.pid());
            }
            ctx.park()?;
        }
    }
}

// ---------------------------------------------------------------------------
// Bell
// ---------------------------------------------------------------------------

struct BellInner {
    waiters: Vec<Pid>,
}

/// A reusable broadcast wakeup — the shape of a condition variable.
///
/// Idle workers [`wait`](Bell::wait) on the bell after finding their
/// queues empty; producers [`ring`](Bell::ring) it after enqueueing
/// work, waking *all* current waiters to re-check their queues. Because
/// the simulation is sequential (a process cannot be preempted between
/// checking a queue and parking on the bell), the classic lost-wakeup
/// race cannot occur.
pub struct Bell {
    inner: Arc<Mutex<BellInner>>,
}

impl Clone for Bell {
    fn clone(&self) -> Self {
        Bell { inner: self.inner.clone() }
    }
}

impl Default for Bell {
    fn default() -> Self {
        Self::new()
    }
}

impl Bell {
    /// Create a bell with no waiters.
    pub fn new() -> Self {
        Bell { inner: Arc::new(Mutex::new(BellInner { waiters: Vec::new() })) }
    }

    /// Park until the next ring.
    pub fn wait(&self, ctx: &Ctx) -> SimResult<()> {
        self.inner.lock().waiters.push(ctx.pid());
        ctx.park()
    }

    /// Wake every process currently waiting.
    pub fn ring(&self, ctx: &Ctx) {
        let wakes: Vec<Pid> = std::mem::take(&mut self.inner.lock().waiters);
        for pid in wakes {
            ctx.shared().schedule_wake_current_epoch(pid, ctx.now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDuration};
    use parking_lot::Mutex as PMutex;

    #[test]
    fn semaphore_serialises_contenders() {
        // Two processes each hold a 1-permit semaphore for 10ns; the
        // second must finish at 20ns.
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let ends = Arc::new(PMutex::new(Vec::new()));
        for name in ["a", "b"] {
            let s = sem.clone();
            let e = ends.clone();
            sim.spawn(name, move |ctx| {
                s.acquire(&ctx).unwrap();
                ctx.delay(SimDuration::from_nanos(10)).unwrap();
                s.release(&ctx);
                e.lock().push((name, ctx.now().as_nanos()));
            });
        }
        sim.run().unwrap();
        assert_eq!(*ends.lock(), vec![("a", 10), ("b", 20)]);
    }

    #[test]
    fn semaphore_two_permits_run_concurrently() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let ends = Arc::new(PMutex::new(Vec::new()));
        for name in ["a", "b"] {
            let s = sem.clone();
            let e = ends.clone();
            sim.spawn(name, move |ctx| {
                s.acquire(&ctx).unwrap();
                ctx.delay(SimDuration::from_nanos(10)).unwrap();
                s.release(&ctx);
                e.lock().push(ctx.now().as_nanos());
            });
        }
        sim.run().unwrap();
        assert_eq!(*ends.lock(), vec![10, 10]);
    }

    #[test]
    fn semaphore_fifo_no_barging() {
        // Queue: big wants 2 permits, then small wants 1. Releasing one
        // permit (total available 1) must NOT let small barge past big.
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let order = Arc::new(PMutex::new(Vec::new()));
        {
            let s = sem.clone();
            sim.spawn("holder", move |ctx| {
                s.acquire_n(&ctx, 2).unwrap();
                ctx.delay(SimDuration::from_nanos(10)).unwrap();
                s.release(&ctx); // one back -> big still can't run
                ctx.delay(SimDuration::from_nanos(10)).unwrap();
                s.release(&ctx); // second back -> big runs
            });
        }
        {
            let s = sem.clone();
            let o = order.clone();
            sim.spawn("big", move |ctx| {
                ctx.delay(SimDuration::from_nanos(1)).unwrap();
                s.acquire_n(&ctx, 2).unwrap();
                o.lock().push(("big", ctx.now().as_nanos()));
                s.release_n(&ctx, 2);
            });
        }
        {
            let s = sem.clone();
            let o = order.clone();
            sim.spawn("small", move |ctx| {
                ctx.delay(SimDuration::from_nanos(2)).unwrap();
                s.acquire(&ctx).unwrap();
                o.lock().push(("small", ctx.now().as_nanos()));
                s.release(&ctx);
            });
        }
        sim.run().unwrap();
        let got = order.lock().clone();
        assert_eq!(got[0].0, "big", "FIFO order violated: {got:?}");
        assert_eq!(got[0].1, 20);
        assert_eq!(got[1].0, "small");
    }

    #[test]
    fn semaphore_available_tracks_permits() {
        let sim = Sim::new();
        let sem = Semaphore::new(3);
        let s = sem.clone();
        sim.spawn("p", move |ctx| {
            assert_eq!(s.available(), 3);
            s.acquire_n(&ctx, 2).unwrap();
            assert_eq!(s.available(), 1);
            s.release_n(&ctx, 2);
            assert_eq!(s.available(), 3);
        });
        sim.run().unwrap();
    }

    #[test]
    fn signal_wakes_all_waiters() {
        let sim = Sim::new();
        let sig = Signal::new();
        let done = Arc::new(PMutex::new(Vec::new()));
        for name in ["w1", "w2", "w3"] {
            let s = sig.clone();
            let d = done.clone();
            sim.spawn(name, move |ctx| {
                s.wait(&ctx).unwrap();
                d.lock().push((name, ctx.now().as_nanos()));
            });
        }
        let s = sig.clone();
        sim.spawn("setter", move |ctx| {
            ctx.delay(SimDuration::from_nanos(30)).unwrap();
            s.set(&ctx);
        });
        sim.run().unwrap();
        let got = done.lock().clone();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|&(_, t)| t == 30));
    }

    #[test]
    fn signal_already_set_returns_immediately() {
        let sim = Sim::new();
        let sig = Signal::new();
        let s = sig.clone();
        sim.spawn("p", move |ctx| {
            s.set(&ctx);
            assert!(s.is_set());
            s.wait(&ctx).unwrap();
            assert_eq!(ctx.now().as_nanos(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn signal_wait_timeout_set_and_expiry() {
        let sim = Sim::new();
        let sig = Signal::new();
        {
            let s = sig.clone();
            sim.spawn("waiter", move |ctx| {
                // First wait times out at 10ns (set comes at 25ns).
                assert!(!s.wait_timeout(&ctx, SimDuration::from_nanos(10)).unwrap());
                assert_eq!(ctx.now().as_nanos(), 10);
                // Second wait sees the set at 25ns, before its deadline.
                assert!(s.wait_timeout(&ctx, SimDuration::from_nanos(100)).unwrap());
                assert_eq!(ctx.now().as_nanos(), 25);
                // A later delay must not be cut short by any stale wake.
                ctx.delay(SimDuration::from_nanos(500)).unwrap();
                assert_eq!(ctx.now().as_nanos(), 525);
            });
        }
        let s = sig.clone();
        sim.spawn("setter", move |ctx| {
            ctx.delay(SimDuration::from_nanos(25)).unwrap();
            s.set(&ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn signal_wait_timeout_deregisters_on_expiry() {
        // After a timeout, a set() must find no stale waiter entry.
        let sim = Sim::new();
        let sig = Signal::new();
        let s = sig.clone();
        sim.spawn("p", move |ctx| {
            assert!(!s.wait_timeout(&ctx, SimDuration::from_nanos(5)).unwrap());
            s.set(&ctx); // would panic/misfire on a stale self-wake
            ctx.delay(SimDuration::from_nanos(50)).unwrap();
            assert_eq!(ctx.now().as_nanos(), 55);
        });
        sim.run().unwrap();
    }

    #[test]
    fn latch_waits_for_all_children() {
        let sim = Sim::new();
        let latch = Latch::new();
        latch.add(3);
        for i in 1..=3u64 {
            let l = latch.clone();
            sim.spawn(format!("child{i}"), move |ctx| {
                ctx.delay(SimDuration::from_nanos(i * 10)).unwrap();
                l.done(&ctx);
            });
        }
        let l = latch.clone();
        sim.spawn("parent", move |ctx| {
            l.wait_zero(&ctx).unwrap();
            assert_eq!(ctx.now().as_nanos(), 30);
        });
        sim.run().unwrap();
    }

    #[test]
    fn latch_reusable_across_regions() {
        let sim = Sim::new();
        let latch = Latch::new();
        let l = latch.clone();
        sim.spawn("parent", move |ctx| {
            // Region 1.
            l.add(1);
            let l2 = l.clone();
            ctx.spawn("c1", move |cctx| {
                cctx.delay(SimDuration::from_nanos(5)).unwrap();
                l2.done(&cctx);
            });
            l.wait_zero(&ctx).unwrap();
            assert_eq!(ctx.now().as_nanos(), 5);
            // Region 2 raises the count again.
            l.add(1);
            let l3 = l.clone();
            ctx.spawn("c2", move |cctx| {
                cctx.delay(SimDuration::from_nanos(7)).unwrap();
                l3.done(&cctx);
            });
            l.wait_zero(&ctx).unwrap();
            assert_eq!(ctx.now().as_nanos(), 12);
        });
        sim.run().unwrap();
    }

    #[test]
    fn bell_wakes_all_waiters_and_is_reusable() {
        let sim = Sim::new();
        let bell = Bell::new();
        let wakeups = Arc::new(PMutex::new(Vec::new()));
        for name in ["w1", "w2"] {
            let b = bell.clone();
            let w = wakeups.clone();
            sim.spawn(name, move |ctx| {
                b.wait(&ctx).unwrap();
                w.lock().push((name, ctx.now().as_nanos()));
                b.wait(&ctx).unwrap();
                w.lock().push((name, ctx.now().as_nanos()));
            });
        }
        let b = bell.clone();
        sim.spawn("ringer", move |ctx| {
            ctx.delay(SimDuration::from_nanos(10)).unwrap();
            b.ring(&ctx);
            ctx.delay(SimDuration::from_nanos(10)).unwrap();
            b.ring(&ctx);
        });
        sim.run().unwrap();
        let got = wakeups.lock().clone();
        assert_eq!(got, vec![("w1", 10), ("w2", 10), ("w1", 20), ("w2", 20)]);
    }

    #[test]
    fn bell_ring_with_no_waiters_is_noop() {
        let sim = Sim::new();
        let bell = Bell::new();
        sim.spawn("p", move |ctx| bell.ring(&ctx));
        sim.run().unwrap();
    }

    #[test]
    #[should_panic(expected = "Latch::done without matching add")]
    fn latch_underflow_panics() {
        let sim = Sim::new();
        let latch = Latch::new();
        sim.spawn("p", move |ctx| latch.done(&ctx));
        // The panic is reported through RunError; re-panic for the test.
        if let Err(e) = sim.run() {
            panic!("{e}");
        }
    }
}
