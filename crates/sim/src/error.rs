//! Error types for simulation processes.

use std::fmt;

/// Errors returned by blocking simulation calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The simulation is shutting down: the event queue drained and the
    /// kernel is unwinding daemon processes. A process receiving this
    /// from any blocking call must return promptly.
    Shutdown,
    /// A primitive was used after being closed (e.g. receiving on a
    /// channel whose senders are all gone and which is empty).
    Closed,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Shutdown => write!(f, "simulation is shutting down"),
            SimError::Closed => write!(f, "simulation primitive closed"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for blocking simulation calls.
pub type SimResult<T> = Result<T, SimError>;

/// Outcome of [`crate::Sim::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time when the last event was processed.
    pub end_time: crate::SimTime,
    /// Number of events the kernel dispatched.
    pub events: u64,
    /// Number of times the virtual clock moved forward (distinct event
    /// timestamps dispatched) — the simulation's "clock tick" count for
    /// observability reports.
    pub clock_advances: u64,
    /// Number of processes ever spawned.
    pub processes: usize,
    /// Host wall-clock nanoseconds spent inside [`crate::Sim::run`].
    /// **Not deterministic** — varies run to run and machine to machine;
    /// never fold it into a fingerprint or committed JSON.
    pub host_ns: u64,
    /// Wakeups skipped by the kernel's dedup fast path (they could only
    /// ever have popped stale). Zero with `OMPSS_SIM_NO_FASTPATH=1`.
    pub wakes_coalesced: u64,
}

/// A simulation failed to complete cleanly.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The event queue drained while non-daemon processes were still
    /// blocked: a deadlock in the modelled system. Contains the names of
    /// the stuck processes.
    Deadlock(Vec<String>),
    /// A process panicked. Contains `(process name, panic message)` for
    /// the first recorded panic.
    ProcessPanic(String, String),
    /// A recovery budget ran out: a fault kept firing past every retry
    /// the runtime was allowed. `what` names the exhausted operation
    /// (task label, message kind), `attempts` how many were made.
    Exhausted {
        /// What ran out of retries.
        what: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A bounded runtime queue overflowed (e.g. the MPI unexpected-
    /// message queue) — surfaced as an error instead of silent
    /// unbounded growth.
    QueueOverflow {
        /// Which queue overflowed.
        queue: String,
        /// The configured capacity it hit.
        capacity: usize,
    },
}

impl RunError {
    /// Tag this error with the fault plan that produced the run, so any
    /// chaos failure is reproducible from its message alone. The tag is
    /// appended to the variant's existing string payload (the `what`,
    /// panic message, queue name, or the stuck-process list) — the enum
    /// shape is unchanged, so callers matching on variants still work.
    pub fn with_fault_context(mut self, seed: u64, rate: f64) -> RunError {
        let tag = format!(" [fault_seed={seed} fault_rate={rate}]");
        match &mut self {
            RunError::Deadlock(names) => {
                names.push(format!("(fault_seed={seed} fault_rate={rate})"))
            }
            RunError::ProcessPanic(_, msg) => msg.push_str(&tag),
            RunError::Exhausted { what, .. } => what.push_str(&tag),
            RunError::QueueOverflow { queue, .. } => queue.push_str(&tag),
        }
        self
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock(names) => {
                write!(f, "simulation deadlock; blocked processes: {}", names.join(", "))
            }
            RunError::ProcessPanic(name, msg) => {
                write!(f, "process '{name}' panicked: {msg}")
            }
            RunError::Exhausted { what, attempts } => {
                write!(f, "recovery budget exhausted for {what} after {attempts} attempts")
            }
            RunError::QueueOverflow { queue, capacity } => {
                write!(f, "queue '{queue}' overflowed its capacity of {capacity}")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_context_lands_in_display_of_every_variant() {
        let errs = [
            RunError::Deadlock(vec!["p0".into()]),
            RunError::ProcessPanic("p".into(), "boom".into()),
            RunError::Exhausted { what: "x".into(), attempts: 3 },
            RunError::QueueOverflow { queue: "q".into(), capacity: 8 },
        ];
        for e in errs {
            let tagged = e.with_fault_context(42, 0.05);
            let shown = tagged.to_string();
            assert!(shown.contains("fault_seed=42"), "missing seed in: {shown}");
            assert!(shown.contains("fault_rate=0.05"), "missing rate in: {shown}");
        }
    }

    #[test]
    fn fault_context_preserves_variant_shape() {
        let e = RunError::Exhausted { what: "task t".into(), attempts: 2 };
        match e.with_fault_context(1, 0.1) {
            RunError::Exhausted { attempts: 2, .. } => {}
            other => panic!("variant changed: {other:?}"),
        }
    }
}
