//! Error types for simulation processes.

use std::fmt;

/// Errors returned by blocking simulation calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The simulation is shutting down: the event queue drained and the
    /// kernel is unwinding daemon processes. A process receiving this
    /// from any blocking call must return promptly.
    Shutdown,
    /// A primitive was used after being closed (e.g. receiving on a
    /// channel whose senders are all gone and which is empty).
    Closed,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Shutdown => write!(f, "simulation is shutting down"),
            SimError::Closed => write!(f, "simulation primitive closed"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for blocking simulation calls.
pub type SimResult<T> = Result<T, SimError>;

/// Outcome of [`crate::Sim::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time when the last event was processed.
    pub end_time: crate::SimTime,
    /// Number of events the kernel dispatched.
    pub events: u64,
    /// Number of times the virtual clock moved forward (distinct event
    /// timestamps dispatched) — the simulation's "clock tick" count for
    /// observability reports.
    pub clock_advances: u64,
    /// Number of processes ever spawned.
    pub processes: usize,
    /// Host wall-clock nanoseconds spent inside [`crate::Sim::run`].
    /// **Not deterministic** — varies run to run and machine to machine;
    /// never fold it into a fingerprint or committed JSON.
    pub host_ns: u64,
    /// Wakeups skipped by the kernel's dedup fast path (they could only
    /// ever have popped stale). Zero with `OMPSS_SIM_NO_FASTPATH=1`.
    pub wakes_coalesced: u64,
}

/// Where a process stood when a run ended badly — one entry per stuck
/// process in [`RunError::Deadlock`]. Structured so tools (the seed
/// sweep, the model checker) can name the culprits without parsing a
/// panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcState {
    /// The process's id, assigned at spawn time.
    pub pid: usize,
    /// The process's rendered name.
    pub name: String,
    /// Executor phase when the queue drained: `"blocked"` (parked in a
    /// primitive, waiting for a wake that never came) or `"ready"` (a
    /// resume event was still in flight — only possible when a fatal
    /// abort discarded the queue).
    pub phase: &'static str,
}

/// A simulation failed to complete cleanly.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The event queue drained while non-daemon processes were still
    /// blocked: a deadlock in the modelled system. Carries the stuck
    /// processes with their blocked-state details.
    Deadlock {
        /// Every non-daemon process that had not finished.
        blocked: Vec<ProcState>,
    },
    /// A process panicked. Contains `(process name, panic message)` for
    /// the first recorded panic.
    ProcessPanic(String, String),
    /// A recovery budget ran out: a fault kept firing past every retry
    /// the runtime was allowed. `what` names the exhausted operation
    /// (task label, message kind), `attempts` how many were made.
    Exhausted {
        /// What ran out of retries.
        what: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A bounded runtime queue overflowed (e.g. the MPI unexpected-
    /// message queue) — surfaced as an error instead of silent
    /// unbounded growth.
    QueueOverflow {
        /// Which queue overflowed.
        queue: String,
        /// The configured capacity it hit.
        capacity: usize,
    },
    /// The kernel's own bookkeeping broke an invariant while running in
    /// validation mode (model checking): a stale event was dispatched,
    /// or a valid pop did not match the tracked pending wake. This is a
    /// bug in the executor, not in the modelled program.
    InvariantViolation {
        /// What the kernel caught, with event/epoch details.
        what: String,
    },
    /// The run was rejected before the machine was built: the
    /// configuration is self-contradictory (e.g. a heartbeat period no
    /// shorter than the lease window, so no node could ever renew its
    /// lease between probes). Structured so callers can distinguish "fix
    /// your config" from runtime failures without parsing a message.
    InvalidConfig {
        /// What is wrong with the configuration, and why.
        what: String,
    },
}

impl RunError {
    /// Whether re-running the same job could plausibly succeed.
    ///
    /// The classification a job server needs before it burns a retry
    /// budget: [`Exhausted`](RunError::Exhausted) and
    /// [`QueueOverflow`](RunError::QueueOverflow) are *resource-shaped*
    /// failures — a retry budget that ran out under an unlucky fault
    /// draw, a bounded queue that filled under momentary pressure — and
    /// a re-run under different fault coordinates (or lighter load) can
    /// complete. [`Deadlock`](RunError::Deadlock),
    /// [`ProcessPanic`](RunError::ProcessPanic) and
    /// [`InvariantViolation`](RunError::InvariantViolation) are
    /// *defect-shaped*: the simulation is deterministic, so an
    /// identical re-run reproduces them exactly and retrying only
    /// wastes the budget.
    pub fn is_retryable(&self) -> bool {
        match self {
            RunError::Exhausted { .. } | RunError::QueueOverflow { .. } => true,
            RunError::Deadlock { .. }
            | RunError::ProcessPanic(_, _)
            | RunError::InvariantViolation { .. }
            | RunError::InvalidConfig { .. } => false,
        }
    }

    /// Tag this error with the fault plan that produced the run, so any
    /// chaos failure is reproducible from its message alone. The tag is
    /// appended to the variant's existing string payload (the `what`,
    /// panic message, queue name, or the stuck-process list) — the enum
    /// shape is unchanged, so callers matching on variants still work.
    pub fn with_fault_context(mut self, seed: u64, rate: f64) -> RunError {
        let tag = format!(" [fault_seed={seed} fault_rate={rate}]");
        match &mut self {
            RunError::Deadlock { blocked } => blocked.push(ProcState {
                pid: usize::MAX,
                name: format!("(fault_seed={seed} fault_rate={rate})"),
                phase: "tag",
            }),
            RunError::ProcessPanic(_, msg) => msg.push_str(&tag),
            RunError::Exhausted { what, .. } => what.push_str(&tag),
            RunError::QueueOverflow { queue, .. } => queue.push_str(&tag),
            RunError::InvariantViolation { what } => what.push_str(&tag),
            RunError::InvalidConfig { what } => what.push_str(&tag),
        }
        self
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock { blocked } => {
                let names: Vec<&str> = blocked.iter().map(|p| p.name.as_str()).collect();
                write!(f, "simulation deadlock; blocked processes: {}", names.join(", "))
            }
            RunError::ProcessPanic(name, msg) => {
                write!(f, "process '{name}' panicked: {msg}")
            }
            RunError::Exhausted { what, attempts } => {
                write!(f, "recovery budget exhausted for {what} after {attempts} attempts")
            }
            RunError::QueueOverflow { queue, capacity } => {
                write!(f, "queue '{queue}' overflowed its capacity of {capacity}")
            }
            RunError::InvariantViolation { what } => {
                write!(f, "executor invariant violated: {what}")
            }
            RunError::InvalidConfig { what } => {
                write!(f, "invalid configuration: {what}")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_context_lands_in_display_of_every_variant() {
        let errs = [
            RunError::Deadlock {
                blocked: vec![ProcState { pid: 0, name: "p0".into(), phase: "blocked" }],
            },
            RunError::ProcessPanic("p".into(), "boom".into()),
            RunError::Exhausted { what: "x".into(), attempts: 3 },
            RunError::QueueOverflow { queue: "q".into(), capacity: 8 },
            RunError::InvariantViolation { what: "stale dispatch".into() },
            RunError::InvalidConfig { what: "period >= window".into() },
        ];
        for e in errs {
            let tagged = e.with_fault_context(42, 0.05);
            let shown = tagged.to_string();
            assert!(shown.contains("fault_seed=42"), "missing seed in: {shown}");
            assert!(shown.contains("fault_rate=0.05"), "missing rate in: {shown}");
        }
    }

    #[test]
    fn retryable_classification_covers_every_variant() {
        let retryable = [
            RunError::Exhausted { what: "x".into(), attempts: 3 },
            RunError::QueueOverflow { queue: "q".into(), capacity: 8 },
        ];
        let fatal = [
            RunError::Deadlock { blocked: vec![] },
            RunError::ProcessPanic("p".into(), "boom".into()),
            RunError::InvariantViolation { what: "stale".into() },
            RunError::InvalidConfig { what: "period >= window".into() },
        ];
        for e in retryable {
            assert!(e.is_retryable(), "{e}");
        }
        for e in fatal {
            assert!(!e.is_retryable(), "{e}");
        }
    }

    #[test]
    fn fault_context_preserves_variant_shape() {
        let e = RunError::Exhausted { what: "task t".into(), attempts: 2 };
        match e.with_fault_context(1, 0.1) {
            RunError::Exhausted { attempts: 2, .. } => {}
            other => panic!("variant changed: {other:?}"),
        }
    }
}
