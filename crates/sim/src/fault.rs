//! Deterministic fault injection: the `ompss-chaos` fault plan.
//!
//! A [`FaultPlan`] is a seeded oracle the device layers (fabric, GPU
//! engines, SMP workers) consult at well-defined injection points. Each
//! decision is a pure function of `(seed, fault class, per-class draw
//! counter)` — no wall clock, no OS randomness — so a faulted run
//! replays *exactly*: the DES kernel serialises all processes, which
//! makes the consultation order itself deterministic, and the fault
//! stream with it.
//!
//! The plan only decides *whether* a fault fires; each layer implements
//! the fault's mechanics (dropping a message, failing a kernel launch)
//! and the runtime implements recovery (retry, re-execution,
//! migration). Layers that were handed no plan take the exact legacy
//! code path — zero cost when chaos is off.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// The failure classes the injector knows how to produce, one per
/// device-dependent mechanism of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// `net`: a fabric message vanishes after occupying the wire.
    NetDrop = 0,
    /// `net`: a fabric message is delivered twice.
    NetDup = 1,
    /// `net`: a fabric message suffers bounded extra latency.
    NetDelay = 2,
    /// `cudasim`: a kernel launch fails (no effect runs).
    KernelFail = 3,
    /// `cudasim`: an async copy corrupts its payload (bytes must not be
    /// consumed; the copy reports failure instead of silently lying).
    CopyCorrupt = 4,
    /// `cudasim`: a whole device is lost (Xid-style, permanent).
    DeviceLoss = 5,
    /// `sim`: an SMP resource stalls for bounded extra virtual time.
    SimStall = 6,
    /// `sim`: an SMP task times out — its body never runs this attempt.
    SimTimeout = 7,
    /// `runtime`: a whole slave node dies — its GPUs, host space,
    /// in-flight messages and queued tasks — at a planned virtual
    /// instant. Never drawn from the rate stream: node loss is armed
    /// explicitly via [`with_node_loss`](FaultPlan::with_node_loss) so a
    /// kill names one exact `(node, instant)`.
    NodeLoss = 8,
}

/// All classes, in discriminant order (report/iteration order).
pub const FAULT_CLASSES: [FaultClass; 9] = [
    FaultClass::NetDrop,
    FaultClass::NetDup,
    FaultClass::NetDelay,
    FaultClass::KernelFail,
    FaultClass::CopyCorrupt,
    FaultClass::DeviceLoss,
    FaultClass::SimStall,
    FaultClass::SimTimeout,
    FaultClass::NodeLoss,
];

impl FaultClass {
    /// Stable lowercase name (JSON report keys).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::NetDrop => "net_drop",
            FaultClass::NetDup => "net_dup",
            FaultClass::NetDelay => "net_delay",
            FaultClass::KernelFail => "kernel_fail",
            FaultClass::CopyCorrupt => "copy_corrupt",
            FaultClass::DeviceLoss => "device_loss",
            FaultClass::SimStall => "sim_stall",
            FaultClass::SimTimeout => "sim_timeout",
            FaultClass::NodeLoss => "node_loss",
        }
    }
}

const N: usize = FAULT_CLASSES.len();

/// A seeded, deterministic fault schedule shared by every injection
/// point of a run (`Arc`-cloned into the fabric, each GPU device, and
/// the SMP execution path).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; N],
    /// First `force[c]` draws of class `c` fire unconditionally —
    /// targeted unit tests script exact fault sequences with this.
    force: [AtomicU64; N],
    /// Draws consulted per class (the deterministic stream position).
    draws: [AtomicU64; N],
    /// Faults actually injected per class.
    injected: [AtomicU64; N],
    /// Planned whole-node kill: the slave node index, or `u64::MAX` when
    /// no kill is armed. Node loss never rides the rate stream.
    node_loss_node: AtomicU64,
    /// Virtual instant (ns) of the planned kill.
    node_loss_at_ns: AtomicU64,
}

impl FaultPlan {
    /// Derive per-class rates from one headline `rate` (the
    /// `OMPSS_FAULT_RATE` knob): message-level and kernel-level faults
    /// fire at the headline rate, duplications/corruptions at half of
    /// it, device loss and timeouts far more rarely — losing a device
    /// per message would leave nothing to recover onto.
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let mut rates = [0.0; N];
        rates[FaultClass::NetDrop as usize] = rate;
        rates[FaultClass::NetDup as usize] = rate / 2.0;
        rates[FaultClass::NetDelay as usize] = rate;
        rates[FaultClass::KernelFail as usize] = rate;
        rates[FaultClass::CopyCorrupt as usize] = rate / 2.0;
        rates[FaultClass::DeviceLoss as usize] = rate / 8.0;
        rates[FaultClass::SimStall as usize] = rate;
        rates[FaultClass::SimTimeout as usize] = rate / 4.0;
        // NodeLoss stays at rate 0: whole-node kills are armed explicitly
        // (`with_node_loss`), never drawn — keeping the rate-sweep streams
        // of the other classes byte-identical to pre-node-loss plans.
        rates[FaultClass::NodeLoss as usize] = 0.0;
        Self {
            seed,
            rates,
            force: zeros(),
            draws: zeros(),
            injected: zeros(),
            node_loss_node: AtomicU64::new(u64::MAX),
            node_loss_at_ns: AtomicU64::new(0),
        }
    }

    /// A plan that never fires on its own — combine with
    /// [`with_forced`](FaultPlan::with_forced) to script exact faults.
    pub fn quiet(seed: u64) -> Self {
        Self::new(seed, 0.0)
    }

    /// Override one class's rate.
    pub fn with_rate(mut self, class: FaultClass, rate: f64) -> Self {
        self.rates[class as usize] = rate.clamp(0.0, 1.0);
        self
    }

    /// Force the first `n` draws of `class` to fire.
    pub fn with_forced(self, class: FaultClass, n: u64) -> Self {
        self.force[class as usize].store(n, Relaxed);
        self
    }

    /// Plan the loss of slave `node` at virtual instant `at_ns`.
    /// Builder form of [`arm_node_loss`](FaultPlan::arm_node_loss).
    pub fn with_node_loss(self, node: u32, at_ns: u64) -> Self {
        self.arm_node_loss(node, at_ns);
        self
    }

    /// Plan the loss of slave `node` at virtual instant `at_ns` on an
    /// already-shared plan.
    pub fn arm_node_loss(&self, node: u32, at_ns: u64) {
        self.node_loss_node.store(node as u64, Relaxed);
        self.node_loss_at_ns.store(at_ns, Relaxed);
    }

    /// The planned `(node, instant ns)` kill, if one is armed.
    pub fn node_loss(&self) -> Option<(u32, u64)> {
        let node = self.node_loss_node.load(Relaxed);
        (node != u64::MAX).then(|| (node as u32, self.node_loss_at_ns.load(Relaxed)))
    }

    /// Record that a planned (non-drawn) fault of `class` was injected —
    /// the node-kill daemon calls this at the kill instant so the stats
    /// count the loss without consuming a rate-stream draw.
    pub fn note_injected(&self, class: FaultClass) {
        self.injected[class as usize].fetch_add(1, Relaxed);
    }

    /// Should the next fault of `class` fire? Pure in `(seed, class,
    /// draw index)`; each call advances that class's draw counter.
    pub fn decide(&self, class: FaultClass) -> bool {
        let c = class as usize;
        let i = self.draws[c].fetch_add(1, Relaxed);
        let fire = if i < self.force[c].load(Relaxed) {
            true
        } else {
            unit(splitmix64(
                self.seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i.wrapping_mul(2) ^ 1,
            )) < self.rates[c]
        };
        if fire {
            self.injected[c].fetch_add(1, Relaxed);
        }
        fire
    }

    /// A deterministic magnitude in `[0, 1)` for a bounded fault (extra
    /// delay, stall length). Its own stream, so interleaving decide and
    /// fraction calls cannot shift either.
    pub fn fraction(&self, class: FaultClass) -> f64 {
        let c = class as usize;
        let i = self.draws[c].load(Relaxed);
        unit(splitmix64(
            self.seed ^ (c as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9) ^ i.wrapping_mul(2),
        ))
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-class injection counts so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            injected: std::array::from_fn(|c| self.injected[c].load(Relaxed)),
            draws: std::array::from_fn(|c| self.draws[c].load(Relaxed)),
        }
    }
}

fn zeros() -> [AtomicU64; N] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

/// Frozen per-class injection counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults injected, indexed by `FaultClass as usize`.
    pub injected: [u64; N],
    /// Injection points consulted, indexed by `FaultClass as usize`.
    pub draws: [u64; N],
}

impl FaultStats {
    /// Injections of one class.
    pub fn count(&self, class: FaultClass) -> u64 {
        self.injected[class as usize]
    }

    /// Total injections across all classes.
    pub fn total(&self) -> u64 {
        self.injected.iter().sum()
    }
}

/// Cluster-wide guard that keeps at least one CUDA device alive: device
/// loss is only allowed while more than one survivor remains, so
/// migration always has somewhere to go and "graceful degradation"
/// cannot degrade to "no GPUs at all".
#[derive(Debug)]
pub struct DeviceFuse {
    survivors: AtomicU64,
}

impl DeviceFuse {
    /// A fuse over `devices` CUDA devices.
    pub fn new(devices: u64) -> Arc<Self> {
        Arc::new(DeviceFuse { survivors: AtomicU64::new(devices) })
    }

    /// Try to claim one device loss. Fails (returns `false`) when it
    /// would leave fewer than one survivor.
    pub fn try_claim(&self) -> bool {
        let mut cur = self.survivors.load(Relaxed);
        loop {
            if cur <= 1 {
                return false;
            }
            match self.survivors.compare_exchange(cur, cur - 1, Relaxed, Relaxed) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Devices still alive.
    pub fn survivors(&self) -> u64 {
        self.survivors.load(Relaxed)
    }
}

/// `splitmix64` mix step — the same generator the scheduler's tie-break
/// seeding uses, here keyed per (seed, class, draw).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a u64 to `[0, 1)` with 53-bit precision.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_stream_is_deterministic() {
        let a = FaultPlan::new(42, 0.3);
        let b = FaultPlan::new(42, 0.3);
        let sa: Vec<bool> = (0..256).map(|_| a.decide(FaultClass::NetDrop)).collect();
        let sb: Vec<bool> = (0..256).map(|_| b.decide(FaultClass::NetDrop)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&f| f), "rate 0.3 over 256 draws must fire at least once");
        assert!(!sa.iter().all(|&f| f), "rate 0.3 must not fire every time");
    }

    #[test]
    fn classes_draw_independent_streams() {
        let p = FaultPlan::new(7, 0.5);
        let drops: Vec<bool> = (0..64).map(|_| p.decide(FaultClass::NetDrop)).collect();
        let dups: Vec<bool> = (0..64).map(|_| p.decide(FaultClass::NetDup)).collect();
        assert_ne!(drops, dups);
        let q = FaultPlan::new(7, 0.5);
        // Interleaved consultation must not shift either stream.
        let mut drops2 = Vec::new();
        let mut dups2 = Vec::new();
        for _ in 0..64 {
            drops2.push(q.decide(FaultClass::NetDrop));
            dups2.push(q.decide(FaultClass::NetDup));
        }
        assert_eq!(drops, drops2);
        assert_eq!(dups, dups2);
    }

    #[test]
    fn rate_zero_never_fires_rate_one_always_fires() {
        let p = FaultPlan::new(1, 0.0);
        assert!((0..128).all(|_| !p.decide(FaultClass::KernelFail)));
        let p = FaultPlan::new(1, 1.0);
        assert!((0..128).all(|_| p.decide(FaultClass::KernelFail)));
        assert_eq!(p.stats().count(FaultClass::KernelFail), 128);
    }

    #[test]
    fn forced_draws_fire_then_revert_to_rate() {
        let p = FaultPlan::quiet(9).with_forced(FaultClass::NetDrop, 3);
        let s: Vec<bool> = (0..8).map(|_| p.decide(FaultClass::NetDrop)).collect();
        assert_eq!(s, [true, true, true, false, false, false, false, false]);
        assert_eq!(p.stats().count(FaultClass::NetDrop), 3);
        assert_eq!(p.stats().draws[FaultClass::NetDrop as usize], 8);
    }

    #[test]
    fn fraction_is_bounded_and_deterministic() {
        let p = FaultPlan::new(3, 0.5);
        let q = FaultPlan::new(3, 0.5);
        for _ in 0..32 {
            let (fp, fq) = (p.fraction(FaultClass::NetDelay), q.fraction(FaultClass::NetDelay));
            assert_eq!(fp, fq);
            assert!((0.0..1.0).contains(&fp));
            p.decide(FaultClass::NetDelay);
            q.decide(FaultClass::NetDelay);
        }
    }

    #[test]
    fn node_loss_is_armed_explicitly_never_drawn() {
        let p = FaultPlan::new(11, 1.0);
        assert_eq!(p.node_loss(), None, "rate alone must not plan a kill");
        assert!(!p.decide(FaultClass::NodeLoss), "node loss never rides the rate stream");
        p.arm_node_loss(1, 250_000);
        assert_eq!(p.node_loss(), Some((1, 250_000)));
        assert_eq!(p.stats().count(FaultClass::NodeLoss), 0);
        p.note_injected(FaultClass::NodeLoss);
        assert_eq!(p.stats().count(FaultClass::NodeLoss), 1);
        let q = FaultPlan::quiet(11).with_node_loss(0, 7);
        assert_eq!(q.node_loss(), Some((0, 7)));
    }

    #[test]
    fn fuse_keeps_one_survivor() {
        let f = DeviceFuse::new(3);
        assert!(f.try_claim());
        assert!(f.try_claim());
        assert!(!f.try_claim(), "last survivor must be protected");
        assert_eq!(f.survivors(), 1);
    }
}
