//! Seeded-violation self-tests: four deliberately broken programs,
//! each of which must yield EXACTLY ONE finding of the right kind,
//! anchored to the right task label. These pin down both the
//! detectors and the suppression rules (a race must not additionally
//! surface as its constituent undeclared accesses).

use ompss_mem::track;
use ompss_runtime::{Device, Runtime, RuntimeConfig, SimDuration, TaskSpec};
use ompss_verify::{validate, Finding, FindingKind};

fn cfg() -> RuntimeConfig {
    RuntimeConfig::multi_gpu(2).with_verify(true)
}

/// Writer tasks need a real duration: a task that completes before the
/// racing task is even submitted is *temporally* ordered with it, and
/// the race detector (correctly) stays quiet.
fn slow() -> SimDuration {
    SimDuration::from_millis(1)
}

fn sole(findings: Vec<Finding>) -> Finding {
    assert_eq!(findings.len(), 1, "expected exactly one finding: {findings:?}");
    findings.into_iter().next().unwrap()
}

#[test]
fn undeclared_write_yields_one_finding() {
    let rep = Runtime::run(cfg(), |omp| async move {
        let data = omp.alloc_array::<f32>(64);
        let other = omp.alloc_array::<f32>(64);
        let r1 = data.region(0..64);
        let r2 = other.region(0..64);
        // Declares only a read of `data`, but (claims to) scribble on
        // `other` — the graph cannot order that write against anyone.
        omp.submit(TaskSpec::new("bad_write").device(Device::Smp).input(r1).body(move |_v| {
            track::record_write(r2);
        }))
        .await;
    });
    let f = sole(validate(&rep));
    assert_eq!(f.kind, FindingKind::UndeclaredWrite);
    assert_eq!(f.label, "bad_write");
}

#[test]
fn write_through_input_yields_one_finding() {
    let rep = Runtime::run(cfg(), |omp| async move {
        let data = omp.alloc_array::<f32>(64);
        let r1 = data.region(0..64);
        // No explicit recording needed: the byte diff catches the
        // mutation through the input-declared view.
        omp.submit(TaskSpec::new("sneaky").device(Device::Smp).input(r1).body(move |v| {
            v[0][0] ^= 0xff;
        }))
        .await;
    });
    let f = sole(validate(&rep));
    assert_eq!(f.kind, FindingKind::WriteThroughInput);
    assert_eq!(f.label, "sneaky");
}

#[test]
fn concurrent_writers_yield_one_finding() {
    let rep = Runtime::run(cfg(), |omp| async move {
        let decoy = omp.alloc_array::<f32>(64);
        let shared = omp.alloc_array::<f32>(64);
        let r3 = shared.region(0..64);
        for (label, range) in [("writer_a", 0..32), ("writer_b", 32..64)] {
            let rd = decoy.region(range);
            omp.submit(TaskSpec::new(label).device(Device::Smp).input(rd).cost_smp(slow()).body(
                move |_v| {
                    track::record_write(r3);
                },
            ))
            .await;
        }
    });
    // One ConcurrentWriters finding; the two undeclared writes that
    // constitute it are suppressed.
    let f = sole(validate(&rep));
    assert_eq!(f.kind, FindingKind::ConcurrentWriters);
    assert_eq!(f.label, "writer_a");
}

#[test]
fn stale_read_yields_one_finding() {
    let rep = Runtime::run(cfg(), |omp| async move {
        let data = omp.alloc_array::<f32>(64);
        let other = omp.alloc_array::<f32>(64);
        let r4 = data.region(0..64);
        let ro = other.region(0..64);
        omp.submit(TaskSpec::new("producer").device(Device::Smp).output(r4).cost_smp(slow()).body(
            move |_v| {
                track::record_write(r4);
            },
        ))
        .await;
        // Reads the producer's region without declaring it: nothing
        // orders this read after (or before) the write.
        omp.submit(TaskSpec::new("racy_reader").device(Device::Smp).input(ro).body(move |_v| {
            track::record_read(r4);
        }))
        .await;
    });
    // One StaleRead finding anchored on the reader; its undeclared
    // read is suppressed, and the producer's write was declared.
    let f = sole(validate(&rep));
    assert_eq!(f.kind, FindingKind::StaleRead);
    assert_eq!(f.label, "racy_reader");
}

/// The flip side of the seeded violations: a correctly-annotated
/// version of the same pattern is clean.
#[test]
fn declared_ordered_version_is_clean() {
    let rep = Runtime::run(cfg(), |omp| async move {
        let data = omp.alloc_array::<f32>(64);
        let r = data.region(0..64);
        omp.submit(TaskSpec::new("producer").device(Device::Smp).output(r).cost_smp(slow()).body(
            move |v| {
                track::record_write(r);
                v[0].fill(1);
            },
        ))
        .await;
        omp.submit(TaskSpec::new("consumer").device(Device::Smp).input(r).body(move |_v| {
            track::record_read(r);
        }))
        .await;
    });
    let findings = validate(&rep);
    assert!(findings.is_empty(), "{findings:?}");
}
