//! Schedule exploration: rerun a program under permuted scheduler
//! tie-break seeds and diff the results.
//!
//! A correct OmpSs program's output is a function of its dependence
//! graph alone — any schedule the graph admits must produce the same
//! bytes. The runtime's scheduler accepts a seed
//! ([`RuntimeConfig::with_sched_seed`]) that perturbs *only* the order
//! of equally-ready tasks, so rerunning an application across seeds
//! and comparing outputs is a cheap dynamic probe for
//! under-declared dependences: a clause bug that happens to be benign
//! under the default FIFO order often surfaces as a result mismatch
//! (or a deadlock) under another legal order.
//!
//! [`RuntimeConfig::with_sched_seed`]: ompss_runtime::RuntimeConfig::with_sched_seed

use ompss_runtime::RunError;

use crate::{Finding, FindingKind};

/// The seeds [`explore`] uses when the caller has no preference. Seed 0
/// is the byte-identical legacy FIFO order; the others are arbitrary
/// perturbations.
pub const DEFAULT_SEEDS: [u64; 3] = [0, 17, 42];

/// What one seeded run produced, as far as schedule comparison cares.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The application's validation payload (final output bytes as
    /// floats). `None` means the run had no real data to compare.
    pub check: Option<Vec<f32>>,
    /// Number of tasks the runtime executed.
    pub tasks: u64,
}

/// Run `run` once per seed and diff the observations against the first
/// seed's. A run that fails surfaces as one structured finding per
/// seed: [`FindingKind::Deadlock`] for deadlocks (naming every blocked
/// process and its phase) and crashes, [`FindingKind::ExecutorInvariant`]
/// for executor self-check failures. Diverging successful runs yield
/// one [`FindingKind::ScheduleNondeterminism`] finding per seed.
///
/// `target` names the program under test in the findings' messages.
pub fn explore<F>(target: &str, seeds: &[u64], run: F) -> Vec<Finding>
where
    F: Fn(u64) -> Result<Observation, RunError>,
{
    let mut findings = Vec::new();
    let mut baseline: Option<(u64, Observation)> = None;
    for &seed in seeds {
        // A buggy program may deadlock or crash under some orders; the
        // runtime reports that as a structured error we turn into a
        // finding, then keep probing the remaining seeds.
        let obs = match run(seed) {
            Ok(obs) => obs,
            Err(err) => {
                findings.push(error_finding(target, seed, &err));
                continue;
            }
        };
        match &baseline {
            None => baseline = Some((seed, obs)),
            Some((base_seed, base)) => {
                if let Some(diff) = diverges(base, &obs) {
                    findings.push(Finding {
                        kind: FindingKind::ScheduleNondeterminism,
                        task: None,
                        label: String::new(),
                        region: None,
                        message: format!(
                            "{target} diverged between scheduler seeds \
                             {base_seed} and {seed}: {diff}"
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Turn one failed seeded run into a finding. Deadlocks enumerate the
/// blocked processes (name and phase) so the report pinpoints *what*
/// is stuck, not just that something is.
fn error_finding(target: &str, seed: u64, err: &RunError) -> Finding {
    match err {
        RunError::Deadlock { blocked } => {
            let stuck: Vec<String> =
                blocked.iter().map(|p| format!("{} ({})", p.name, p.phase)).collect();
            Finding {
                kind: FindingKind::Deadlock,
                task: None,
                label: String::new(),
                region: None,
                message: format!(
                    "{target} deadlocked under scheduler seed {seed}; blocked: {}",
                    stuck.join(", ")
                ),
            }
        }
        RunError::InvariantViolation { what } => Finding {
            kind: FindingKind::ExecutorInvariant,
            task: None,
            label: String::new(),
            region: None,
            message: format!(
                "{target} tripped an executor invariant under scheduler seed {seed}: {what}"
            ),
        },
        other => Finding {
            kind: FindingKind::Deadlock,
            task: None,
            label: String::new(),
            region: None,
            message: format!("{target} crashed under scheduler seed {seed}: {other}"),
        },
    }
}

/// Describe how two observations differ, or `None` if they agree.
fn diverges(a: &Observation, b: &Observation) -> Option<String> {
    if a.tasks != b.tasks {
        return Some(format!("{} tasks vs {}", a.tasks, b.tasks));
    }
    match (&a.check, &b.check) {
        (Some(x), Some(y)) if x.len() != y.len() => {
            Some(format!("output length {} vs {}", x.len(), y.len()))
        }
        (Some(x), Some(y)) => {
            let at = x.iter().zip(y).position(|(p, q)| p.to_bits() != q.to_bits())?;
            Some(format!("outputs first differ at element {at}: {} vs {}", x[at], y[at]))
        }
        (None, None) => None,
        _ => Some("one run produced output, the other none".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_runtime::ProcState;

    fn obs(tasks: u64, check: &[f32]) -> Observation {
        Observation { check: Some(check.to_vec()), tasks }
    }

    #[test]
    fn identical_runs_are_clean() {
        let f = explore("t", &DEFAULT_SEEDS, |_| Ok(obs(4, &[1.0, 2.0])));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn diverging_output_is_flagged_per_seed() {
        let f = explore("t", &DEFAULT_SEEDS, |seed| {
            Ok(obs(4, &[1.0, if seed == 42 { 3.0 } else { 2.0 }]))
        });
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::ScheduleNondeterminism);
        assert!(f[0].message.contains("seeds 0 and 42"), "{}", f[0].message);
        assert!(f[0].message.contains("element 1"), "{}", f[0].message);
    }

    #[test]
    fn task_count_divergence_is_flagged() {
        let f = explore("t", &[0, 1], |seed| Ok(obs(4 + seed, &[])));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("4 tasks vs 5"), "{}", f[0].message);
    }

    #[test]
    fn deadlock_names_blocked_processes_and_comparison_continues() {
        let f = explore("t", &DEFAULT_SEEDS, |seed| {
            if seed == 0 {
                return Err(RunError::Deadlock {
                    blocked: vec![ProcState { pid: 3, name: "worker".into(), phase: "blocked" }],
                });
            }
            Ok(obs(2, &[1.0]))
        });
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, FindingKind::Deadlock);
        assert!(f[0].message.contains("seed 0"), "{}", f[0].message);
        assert!(f[0].message.contains("worker (blocked)"), "{}", f[0].message);
    }

    #[test]
    fn invariant_violation_is_its_own_kind() {
        let f = explore("t", &[0], |_| {
            Err(RunError::InvariantViolation { what: "stale event reached dispatch".into() })
        });
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, FindingKind::ExecutorInvariant);
        assert!(f[0].message.contains("stale event"), "{}", f[0].message);
    }
}
