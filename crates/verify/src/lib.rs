//! # ompss-verify — clause/dependence race detector
//!
//! The runtime's verification mode ([`RuntimeConfig::verify`]) gathers
//! evidence: the regions every task body actually read and wrote (byte
//! diffing plus instrumented recordings), the task graph's
//! submission-time lints, and a happens-before race analysis over the
//! observations. This crate turns that evidence into [`Finding`]s a
//! programmer can act on:
//!
//! * **Clause conformance** — every observed access is checked against
//!   the task's declared `input`/`output`/`inout` clauses: undeclared
//!   reads, undeclared writes, writes through an `input` clause, and
//!   accesses straying outside the declared region.
//! * **Races** — pairs of observed accesses with no ordering path in
//!   the dependence graph: concurrent writers and stale reads. A race
//!   *suppresses* the per-task undeclared findings for the same bytes,
//!   so each root cause surfaces exactly once.
//! * **Graph lints** — dead writes (a produced value overwritten
//!   before anything read it).
//!
//! The `verify` binary runs the shipped applications under small
//! multi-GPU and cluster configurations with verification on, applies
//! [`validate`], explores alternative schedules
//! ([`schedule`]), and emits a machine-readable JSON report; any
//! finding is a non-zero exit.

#![warn(missing_docs)]

pub mod schedule;

use std::fmt;

use ompss_core::{GraphLint, TaskId};
use ompss_json::{Json, ToJson};
use ompss_mem::Region;
use ompss_runtime::{RunReport, TaskAccess};

/// The kind of defect a [`Finding`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A task read bytes no `input`/`inout` clause declared.
    UndeclaredRead,
    /// A task wrote bytes no `output`/`inout` clause declared.
    UndeclaredWrite,
    /// A task wrote bytes it declared only as `input`.
    WriteThroughInput,
    /// An access overlapped a declared clause but strayed outside it.
    OutOfRegion,
    /// Two tasks wrote overlapping bytes with no ordering between them.
    ConcurrentWriters,
    /// A task read bytes another task wrote, unordered — the read may
    /// observe a stale or torn value.
    StaleRead,
    /// A produced value was overwritten before any task read it.
    DeadWrite,
    /// The program deadlocked or crashed under some schedule.
    Deadlock,
    /// Results differed across legal schedules.
    ScheduleNondeterminism,
    /// A cycle through dependence and wait edges: no legal schedule
    /// can order the involved tasks.
    WaitCycle,
    /// A wait blocks on a sentinel region no task ever produces.
    UnsatisfiableWait,
    /// A task can never become ready (its predecessors never complete).
    UnreachableTask,
    /// A clause declaration the graph builder rejected outright.
    UnsatisfiableClause,
    /// The executor broke one of its own invariants (epoch tracking,
    /// wake coalescing) during a run.
    ExecutorInvariant,
}

impl FindingKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::UndeclaredRead => "undeclared-read",
            FindingKind::UndeclaredWrite => "undeclared-write",
            FindingKind::WriteThroughInput => "write-through-input",
            FindingKind::OutOfRegion => "out-of-region",
            FindingKind::ConcurrentWriters => "concurrent-writers",
            FindingKind::StaleRead => "stale-read",
            FindingKind::DeadWrite => "dead-write",
            FindingKind::Deadlock => "deadlock",
            FindingKind::ScheduleNondeterminism => "schedule-nondeterminism",
            FindingKind::WaitCycle => "wait-cycle",
            FindingKind::UnsatisfiableWait => "unsatisfiable-wait",
            FindingKind::UnreachableTask => "unreachable-task",
            FindingKind::UnsatisfiableClause => "unsatisfiable-clause",
            FindingKind::ExecutorInvariant => "executor-invariant",
        }
    }
}

/// One verified defect, anchored to the task that exhibits it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// The primary task (the reader for races, the lost writer for
    /// dead writes), if the finding is task-scoped.
    pub task: Option<TaskId>,
    /// Label of the primary task (empty when unknown).
    pub label: String,
    /// The bytes involved, if region-scoped.
    pub region: Option<Region>,
    /// Human-readable diagnosis.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind.name(), self.message)
    }
}

impl ToJson for Finding {
    fn to_json(&self) -> Json {
        let mut j = Json::object().field("kind", self.kind.name());
        if let Some(t) = self.task {
            j.set("task", t.0);
        }
        j.set("label", self.label.as_str());
        if let Some(r) = self.region {
            j.set("region", r.to_string());
        }
        j.field("message", self.message.as_str())
    }
}

fn who(task: TaskId, label: &str) -> String {
    if label.is_empty() {
        format!("task {}", task.0)
    } else {
        format!("task {} '{label}'", task.0)
    }
}

/// Check one run's verification evidence; returns the findings, most
/// severe classes first (races, then clause conformance, then lints).
/// A report from a run without verification mode yields nothing.
pub fn validate(report: &RunReport) -> Vec<Finding> {
    let Some(v) = &report.verify else { return Vec::new() };
    let mut findings = Vec::new();

    // Races first: they both produce findings and suppress the
    // per-task undeclared findings covering the same bytes (the race
    // is the root cause; reporting the undeclared access again would
    // double-count it).
    let mut racy_writes: Vec<(TaskId, Region)> = Vec::new();
    let mut racy_reads: Vec<(TaskId, Region)> = Vec::new();
    for race in &v.races {
        match race {
            GraphLint::ConcurrentWrite { a, a_label, a_region, b, b_region, .. } => {
                racy_writes.push((*a, *a_region));
                racy_writes.push((*b, *b_region));
                findings.push(Finding {
                    kind: FindingKind::ConcurrentWriters,
                    task: Some(*a),
                    label: a_label.clone(),
                    region: Some(*a_region),
                    message: race.to_string(),
                });
            }
            GraphLint::UnorderedReadWrite { reader, reader_label, read, .. } => {
                racy_reads.push((*reader, *read));
                findings.push(Finding {
                    kind: FindingKind::StaleRead,
                    task: Some(*reader),
                    label: reader_label.clone(),
                    region: Some(*read),
                    message: race.to_string(),
                });
            }
            GraphLint::DeadWrite { .. } => {}
        }
    }

    for t in &v.tasks {
        findings.extend(conformance(t, &racy_writes, &racy_reads));
    }

    for lint in &v.lints {
        if let GraphLint::DeadWrite { region, writer, writer_label, .. } = lint {
            findings.push(Finding {
                kind: FindingKind::DeadWrite,
                task: Some(*writer),
                label: writer_label.clone(),
                region: Some(*region),
                message: lint.to_string(),
            });
        }
    }
    findings
}

/// Clause-conformance findings for one task's observations.
fn conformance(
    t: &TaskAccess,
    racy_writes: &[(TaskId, Region)],
    racy_reads: &[(TaskId, Region)],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let suppressed = |list: &[(TaskId, Region)], r: &Region| {
        list.iter().any(|(id, s)| *id == t.task && s.overlaps(r))
    };
    for w in &t.writes {
        if let Some(d) = t.declared.iter().find(|d| d.region.contains(w)) {
            if !d.kind.writes() {
                out.push(Finding {
                    kind: FindingKind::WriteThroughInput,
                    task: Some(t.task),
                    label: t.label.clone(),
                    region: Some(*w),
                    message: format!(
                        "{} wrote {w} but declared {} only as input — \
                         successors ordered by that clause may run on stale data",
                        who(t.task, &t.label),
                        d.region
                    ),
                });
            }
        } else if let Some(d) = t.declared.iter().find(|d| d.region.overlaps(w)) {
            out.push(Finding {
                kind: FindingKind::OutOfRegion,
                task: Some(t.task),
                label: t.label.clone(),
                region: Some(*w),
                message: format!(
                    "{} wrote {w}, straying outside its declared region {}",
                    who(t.task, &t.label),
                    d.region
                ),
            });
        } else if !suppressed(racy_writes, w) {
            out.push(Finding {
                kind: FindingKind::UndeclaredWrite,
                task: Some(t.task),
                label: t.label.clone(),
                region: Some(*w),
                message: format!(
                    "{} wrote {w} without any output/inout clause covering it — \
                     the dependence graph cannot order this write",
                    who(t.task, &t.label)
                ),
            });
        }
    }
    for r in &t.reads {
        if let Some(d) = t.declared.iter().find(|d| d.region.contains(r)) {
            if !d.kind.reads() {
                out.push(Finding {
                    kind: FindingKind::UndeclaredRead,
                    task: Some(t.task),
                    label: t.label.clone(),
                    region: Some(*r),
                    message: format!(
                        "{} read {r} but declared {} only as output — \
                         the read is not ordered after the previous writer",
                        who(t.task, &t.label),
                        d.region
                    ),
                });
            }
        } else if let Some(d) = t.declared.iter().find(|d| d.region.overlaps(r)) {
            out.push(Finding {
                kind: FindingKind::OutOfRegion,
                task: Some(t.task),
                label: t.label.clone(),
                region: Some(*r),
                message: format!(
                    "{} read {r}, straying outside its declared region {}",
                    who(t.task, &t.label),
                    d.region
                ),
            });
        } else if !suppressed(racy_reads, r) {
            out.push(Finding {
                kind: FindingKind::UndeclaredRead,
                task: Some(t.task),
                label: t.label.clone(),
                region: Some(*r),
                message: format!(
                    "{} read {r} without any input/inout clause covering it — \
                     the dependence graph cannot order this read",
                    who(t.task, &t.label)
                ),
            });
        }
    }
    out
}

/// Serialise a set of findings (with context) as the verify report's
/// JSON shape: `{"target": ..., "findings": [...], "clean": bool}`.
pub fn report_json(target: &str, findings: &[Finding]) -> Json {
    let mut arr = Json::array();
    for f in findings {
        arr.push(f.to_json());
    }
    Json::object()
        .field("target", target)
        .field("clean", findings.is_empty())
        .field("findings", arr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_mem::{Access, DataId};
    use ompss_runtime::VerifyData;

    fn r(data: u64, offset: u64, len: u64) -> Region {
        Region::new(DataId(data), offset, len)
    }

    fn report_with(v: VerifyData) -> RunReport {
        // Only the `verify` field matters to `validate`; fabricate the
        // rest through a real (tiny) run to keep the struct honest.
        let mut rep =
            ompss_runtime::Runtime::run(ompss_runtime::RuntimeConfig::multi_gpu(1), |_omp| async {
            });
        rep.verify = Some(v);
        rep
    }

    fn obs(task: u64, label: &str, declared: Vec<Access>) -> TaskAccess {
        TaskAccess {
            task: TaskId(task),
            label: label.into(),
            declared,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    #[test]
    fn clean_observation_yields_no_findings() {
        let mut t = obs(1, "gemm", vec![Access::input(r(1, 0, 8)), Access::inout(r(2, 0, 8))]);
        t.reads = vec![r(1, 0, 8), r(2, 0, 8)];
        t.writes = vec![r(2, 0, 8), r(2, 2, 3)];
        let rep = report_with(VerifyData { tasks: vec![t], ..Default::default() });
        assert!(validate(&rep).is_empty());
    }

    #[test]
    fn undeclared_write_is_flagged_once() {
        let mut t = obs(3, "rogue", vec![Access::input(r(1, 0, 8))]);
        t.writes = vec![r(2, 0, 8)];
        let rep = report_with(VerifyData { tasks: vec![t], ..Default::default() });
        let f = validate(&rep);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::UndeclaredWrite);
        assert_eq!(f[0].label, "rogue");
        assert!(f[0].message.contains("task 3 'rogue'"), "{}", f[0].message);
    }

    #[test]
    fn write_through_input_beats_undeclared() {
        let mut t = obs(4, "sneaky", vec![Access::input(r(1, 0, 16))]);
        t.writes = vec![r(1, 4, 4)];
        let rep = report_with(VerifyData { tasks: vec![t], ..Default::default() });
        let f = validate(&rep);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::WriteThroughInput);
    }

    #[test]
    fn out_of_region_access_is_distinguished() {
        let mut t = obs(5, "stray", vec![Access::output(r(1, 0, 8))]);
        t.writes = vec![r(1, 4, 8)]; // half in, half out
        let rep = report_with(VerifyData { tasks: vec![t], ..Default::default() });
        let f = validate(&rep);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::OutOfRegion);
    }

    #[test]
    fn race_suppresses_matching_undeclared_findings() {
        let mut a = obs(1, "wa", vec![Access::input(r(9, 0, 8))]);
        a.writes = vec![r(3, 0, 8)];
        let mut b = obs(2, "wb", vec![Access::input(r(9, 8, 8))]);
        b.writes = vec![r(3, 0, 8)];
        let race = GraphLint::ConcurrentWrite {
            a: TaskId(1),
            a_label: "wa".into(),
            a_region: r(3, 0, 8),
            b: TaskId(2),
            b_label: "wb".into(),
            b_region: r(3, 0, 8),
        };
        let rep =
            report_with(VerifyData { tasks: vec![a, b], races: vec![race], ..Default::default() });
        let f = validate(&rep);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, FindingKind::ConcurrentWriters);
    }

    #[test]
    fn json_report_shape() {
        let f = Finding {
            kind: FindingKind::DeadWrite,
            task: Some(TaskId(7)),
            label: "init".into(),
            region: Some(r(1, 0, 8)),
            message: "m".into(),
        };
        let j = report_json("stream/multi_gpu", &[f]);
        assert_eq!(j.get("clean"), Some(&Json::Bool(false)));
        assert_eq!(j.get("target"), Some(&Json::Str("stream/multi_gpu".into())));
        let Some(Json::Arr(items)) = j.get("findings") else { panic!("findings not an array") };
        assert_eq!(items[0].get("kind"), Some(&Json::Str("dead-write".into())));
        assert_eq!(items[0].get("region"), Some(&Json::Str("D1[0..8)".into())));
    }
}
