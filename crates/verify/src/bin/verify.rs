//! `verify` — run the shipped applications under verification mode and
//! report clause/dependence findings as JSON.
//!
//! ```text
//! verify --all              # all four apps (default when no args)
//! verify matmul stream      # a subset
//! verify --no-schedules ... # skip the seed-permutation exploration
//! verify --seeds 0,9,23     # explore these scheduler seeds instead
//! ```
//!
//! Each selected application runs with [`RuntimeConfig::verify`] on
//! under three topologies (2 GPUs on one node; a 2-node cluster; the
//! same cluster with `with_sharded_control`), its
//! evidence is checked by [`ompss_verify::validate`], and — unless
//! `--no-schedules` — it is rerun across scheduler tie-break seeds
//! ([`ompss_verify::schedule`]) to diff results. The report is printed
//! as pretty JSON; any finding makes the exit status 1.
//!
//! Every section (app × topology, and each app's schedule exploration)
//! is an independent set of simulations, so sections run on `--jobs N`
//! host threads (default `OMPSS_BENCH_JOBS` / host parallelism) and are
//! reassembled in a fixed order: the report is byte-identical at any
//! job count.

use ompss_apps::common::AppRun;
use ompss_apps::matmul::ompss::InitMode;
use ompss_apps::matmul::{self, MatmulParams};
use ompss_apps::nbody::{self, NbodyParams};
use ompss_apps::perlin::{self, PerlinParams};
use ompss_apps::stream::{self, StreamParams};
use ompss_json::Json;
use ompss_runtime::{RunError, RuntimeConfig};
use ompss_verify::schedule::{self, Observation};
use ompss_verify::{report_json, validate, Finding};

const APPS: [&str; 4] = ["matmul", "stream", "nbody", "perlin"];

fn run_app(name: &str, cfg: RuntimeConfig) -> AppRun {
    match try_run_app(name, cfg) {
        Ok(run) => run,
        Err(e) => {
            // One consistent line per failure class — the RunError
            // Display — and a nonzero exit, not a panic trace.
            eprintln!("error: {name}: {e}");
            std::process::exit(1);
        }
    }
}

fn try_run_app(name: &str, cfg: RuntimeConfig) -> Result<AppRun, RunError> {
    match name {
        "matmul" => matmul::ompss::try_run(cfg, MatmulParams::validate(), InitMode::Smp),
        "stream" => stream::ompss::try_run(cfg, StreamParams::validate()),
        "nbody" => nbody::ompss::try_run(cfg, NbodyParams::validate()),
        "perlin" => perlin::ompss::try_run(cfg, PerlinParams::validate(), false),
        other => panic!("unknown app '{other}'"),
    }
}

/// The topologies every app is checked under: the paper's single-node
/// multi-GPU setting, its multi-node cluster setting (flat master),
/// and the same cluster with the sharded control plane on — so the
/// shard-homed directory and sub-master expansion face the same
/// clause/dependence validation as the flat path.
fn configs() -> [(&'static str, RuntimeConfig); 3] {
    [
        ("multi_gpu", RuntimeConfig::multi_gpu(2)),
        ("cluster", RuntimeConfig::gpu_cluster(2)),
        ("cluster_sharded", RuntimeConfig::gpu_cluster(2).with_sharded_control(2)),
    ]
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: verify [--all] [--no-schedules] [--jobs N] [--seeds a,b,c] [app...]\napps: {}",
            APPS.join(" ")
        );
        return;
    }
    ompss_sweep::parse_jobs_flag(&mut args);
    let seeds = parse_seeds_flag(&mut args);
    let schedules = !args.iter().any(|a| a == "--no-schedules");
    // Resolve names against APPS so the closures below capture
    // `&'static str`, not borrows of `args`.
    let named: Vec<&'static str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .map(|a| {
            *APPS
                .iter()
                .find(|x| **x == a)
                .unwrap_or_else(|| panic!("unknown app '{a}'; expected one of {APPS:?}"))
        })
        .collect();
    let selected: Vec<&'static str> =
        if named.is_empty() || args.iter().any(|a| a == "--all") { APPS.to_vec() } else { named };

    // One sweep task per report section, queued in report order.
    type SectionTask = Box<dyn FnOnce() -> (String, Vec<Finding>) + Send>;
    let mut tasks: Vec<SectionTask> = Vec::new();
    for &app in &selected {
        for (cfg_name, cfg) in configs() {
            tasks.push(Box::new(move || {
                let run = run_app(app, cfg.with_verify(true));
                let report = run.report.as_ref().expect("ompss app run carries a report");
                (format!("{app}/{cfg_name}"), validate(report))
            }));
        }
        if schedules {
            let seeds = seeds.clone();
            tasks.push(Box::new(move || (format!("{app}/schedules"), explore_app(app, &seeds))));
        }
    }

    let mut sections = Json::array();
    let mut total = 0usize;
    for (target, findings) in ompss_sweep::run_jobs(ompss_sweep::jobs(), tasks) {
        total += findings.len();
        sections.push(report_json(&target, &findings));
    }

    let report = Json::object()
        .field("tool", "ompss-verify")
        .field("total_findings", total as u64)
        .field("reports", sections);
    println!("{}", report.to_pretty_string().trim_end());
    if total > 0 {
        std::process::exit(1);
    }
}

/// Consume a `--seeds a,b,c` / `--seeds=a,b,c` flag; defaults to
/// [`schedule::DEFAULT_SEEDS`] when absent.
fn parse_seeds_flag(args: &mut Vec<String>) -> Vec<u64> {
    let parse = |v: &str| -> Vec<u64> {
        let seeds: Vec<u64> = v
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.trim().parse::<u64>().expect("--seeds expects comma-separated integers"))
            .collect();
        assert!(!seeds.is_empty(), "--seeds needs at least one seed");
        seeds
    };
    let mut seeds = schedule::DEFAULT_SEEDS.to_vec();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--seeds" {
            seeds = parse(args.get(i + 1).unwrap_or_else(|| panic!("--seeds needs a value")));
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--seeds=") {
            seeds = parse(v);
            args.remove(i);
        } else {
            i += 1;
        }
    }
    seeds
}

/// Rerun `app` on the multi-GPU topology across scheduler seeds and
/// diff outputs (verification itself stays off: exploration only cares
/// about the results, and the byte-diff snapshots would slow the extra
/// runs for nothing).
fn explore_app(app: &str, seeds: &[u64]) -> Vec<Finding> {
    schedule::explore(app, seeds, |seed| {
        let run = try_run_app(app, RuntimeConfig::multi_gpu(2).with_sched_seed(seed))?;
        let tasks = run.report.as_ref().map_or(0, |r| r.tasks);
        Ok(Observation { check: run.check, tasks })
    })
}
