//! In-tree drop-in subset of the `criterion` API. The build
//! environment has no access to crates.io, so the workspace vendors
//! the slice of the API its benches use: `benchmark_group`,
//! `bench_function`, `iter`/`iter_batched`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple — warm up briefly, then time a
//! fixed-duration batch of iterations with `std::time::Instant` and
//! report mean time per iteration (plus per-element throughput when
//! declared). No statistics, outlier analysis, or HTML reports.

use std::time::{Duration, Instant};

/// Declared work per benchmark iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// How `iter_batched` amortises setup; ignored by this shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work per iteration for benches that follow.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Hint for the sample count; this shim times a fixed batch.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        // Warm-up / calibration run.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        // Aim for ~target_time of measurement, capped for slow benches.
        let iters = (self.parent.target_time.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000);
        let mut b = Bencher { iters: iters as u64, elapsed: Duration::ZERO };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.3} MB/s", n as f64 / mean / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.3} µs/iter  ({} iters){}",
            self.name,
            id,
            mean * 1e6,
            b.iters,
            rate
        );
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { target_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), parent: self, throughput: None }
    }
}

/// Prevent the optimiser from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Group benchmark functions under one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut c = Criterion { target_time: Duration::from_millis(5) };
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        g.bench_function("counting", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
