//! In-tree drop-in subset of the `proptest` API. The build environment
//! has no access to crates.io, so the workspace vendors the slice of
//! proptest it uses: the [`Strategy`] trait with `prop_map`, integer
//! range and tuple strategies, [`collection::vec`], [`prop_oneof!`],
//! `any::<bool|u8|...>()`, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, chosen deliberately:
//! - **Deterministic**: the RNG is seeded from the test function's
//!   name, so every run of the suite explores the same cases. This
//!   matches the repo-wide rule that results are bit-reproducible.
//! - **No shrinking**: a failing case reports its inputs via the
//!   panic message (the `Debug` of each generated argument) instead of
//!   searching for a minimal counterexample.

use std::fmt;

/// Run-configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*` macros inside a proptest body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Create a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic split-mix64 generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a), typically the test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over every value of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The usual exports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define test functions whose arguments are drawn from strategies.
///
/// Supports the upstream surface used in this repo: an optional
/// `#![proptest_config(...)]` header followed by one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one fn, recurses.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case + 1, cfg.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a proptest body; failure aborts only this case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = Strategy::generate(&(-2i32..3), &mut rng);
            assert!((-2..3).contains(&s));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, config and assertions together.
        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec((0u8..10, any::<bool>()), 1..5),
            k in 1usize..4,
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!((1..4).contains(&k));
            for (x, _flag) in &xs {
                prop_assert!(*x < 10, "x out of range: {}", x);
            }
            prop_assert_eq!(xs.len(), xs.len());
            prop_assert_ne!(xs.len(), 0);
        }

        #[test]
        fn oneof_picks_all_arms(sel in prop_oneof![0u8..1, 10u8..11]) {
            prop_assert!(sel == 0 || sel == 10);
        }
    }
}
